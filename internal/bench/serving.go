package bench

// Multi-tenant serving benchmarks: what the shared-acquisition scheduler
// and the streaming results tier sustain, measured at the engine level so
// the -json trajectory and the module-root benchmarks share one body.
//
// The headline axis is queries/sec: M queries posted under one sensing
// signature ride ONE in-network acquisition per epoch, so stepping all M
// costs roughly one epoch of radio work plus M merge/cut stages — the
// shared M=64 run should push ~64× the queries/sec of M=1 at nearly the
// same ns/op. The unshared variant schedules the same M queries as
// private acquisition groups (the pre-sharing behavior) for the baseline
// column of EXPERIMENTS.md's serving table.

import (
	"sync"
	"testing"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/serve"
	"kspot/internal/topk/mint"
)

// RunSharedAcquisitionBench steps m same-signature queries over b.N epochs
// of the standard deployment and reports the sustained queries/sec. With
// shared=true all m queries join one shared-acquisition group; with
// shared=false each gets a private group. The first epoch (query install +
// MINT creation phase) is a warm-up excluded from the measurement.
func RunSharedAcquisitionBench(b *testing.B, m int, shared bool) float64 {
	net, src, q, err := StandardDeployment()
	if err != nil {
		b.Fatal(err)
	}
	sched := engine.NewScheduler(engine.NewDeployment("bench", net, src))
	sqs := make([]*engine.ScheduledQuery, 0, m)
	for i := 0; i < m; i++ {
		if shared && i > 0 {
			// Later members join the group's acquisition: no operator of
			// their own, just a per-member cut over the shared ranking.
			sqs = append(sqs, sched.Schedule(engine.QuerySpec{Key: "shared", CutK: q.K}))
			continue
		}
		op := mint.New()
		if err := op.Attach(net, q); err != nil {
			b.Fatal(err)
		}
		spec := engine.QuerySpec{Ops: []engine.EpochRunner{op}, CutK: q.K}
		if shared {
			spec.Key = "shared"
		}
		sqs = append(sqs, sched.Schedule(spec))
	}
	step := func() {
		for _, sq := range sqs {
			out, err := sched.Step(sq)
			if err != nil {
				b.Fatal(err)
			}
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
	step() // creation epoch
	net.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	qps := 0.0
	if s := b.Elapsed().Seconds(); s > 0 {
		qps = float64(m) * float64(b.N) / s
	}
	b.ReportMetric(qps, "queries/sec")
	return qps
}

// RunHubFanOutBench publishes b.N epoch results through one serve.Hub into
// subs concurrent subscribers — the SSE fan-out path without the sockets —
// and reports the sustained subscriber-deliveries per second.
func RunHubFanOutBench(b *testing.B, subs int) float64 {
	hub := serve.NewHub(1)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub := hub.Subscribe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := sub.Next(); !ok {
					return
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(serve.Result{Epoch: model.Epoch(i)})
	}
	hub.Close()
	wg.Wait()
	b.StopTimer()
	rate := 0.0
	if s := b.Elapsed().Seconds(); s > 0 {
		rate = float64(subs) * float64(b.N) / s
	}
	b.ReportMetric(rate, "subscribers/sec")
	return rate
}
