package bench

import (
	"fmt"
	"io"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/central"
	"kspot/internal/topk/tja"
	"kspot/internal/topk/tput"
	"kspot/internal/trace"
)

func init() {
	register(Experiment{ID: "e7", Title: "Historic queries: TJA vs TPUT vs centralized", Run: runE7})
	register(Experiment{ID: "e8", Title: "TJA phase anatomy (LB/HJ/CL bytes)", Run: runE8})
}

// historicRun executes one historic operator on a fresh network and
// collects stats.
func historicRun(name string, op topk.HistoricOperator, q topk.HistoricQuery, data topk.HistoricData, n, g int) (stats.RunStats, []model.Answer, error) {
	net, err := gridNetwork(n, g, sim.DefaultOptions())
	if err != nil {
		return stats.RunStats{}, nil, err
	}
	got, err := op.Run(net, q, data)
	if err != nil {
		return stats.RunStats{}, nil, err
	}
	rs := stats.Collect(name, net, 1)
	want := topk.ExactHistoric(data, q)
	if model.EqualAnswers(got, want) {
		rs.Correct = 100
		rs.Recall = 1
	} else {
		rs.Recall = model.Recall(got, want)
	}
	return rs, got, nil
}

// runE7 sweeps window size and k for the three historic algorithms on the
// homogeneous diurnal workload (TPUT's favourable case, so the comparison
// is fair to the baseline).
func runE7(w io.Writer, cfg RunConfig) error {
	const n, g = 36, 6
	src := trace.NewDiurnal(5)
	src.NodeSpread = 0
	src.Noise = 0

	nodes := make([]model.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		nodes = append(nodes, model.NodeID(i))
	}

	var winSeries []stats.Series
	for _, window := range []int{64, 128, 256, 512, 1024} {
		window = cfg.scaled(window)
		data := topk.HistoricData(trace.Series(src, nodes, window))
		q := topk.HistoricQuery{K: 4, Agg: model.AggAvg, Window: window}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.HistoricOperator
		}{{"tja", tja.New()}, {"tput", tput.New()}, {"central", central.NewHistoric()}} {
			rs, _, err := historicRun(o.name, o.op, q, data, n, g)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		winSeries = append(winSeries, stats.Series{X: float64(window), Rows: rows})
		if rows[0].TxBytes >= rows[2].TxBytes {
			fmt.Fprintf(w, "!! SHAPE VIOLATION: tja bytes %d not below centralized %d at W=%d\n",
				rows[0].TxBytes, rows[2].TxBytes, window)
		}
	}
	fmt.Fprint(w, stats.SweepTable("E7a: historic bytes vs window, n=36, k=4", "window", winSeries))

	var kSeries []stats.Series
	window := cfg.scaled(256)
	data := topk.HistoricData(trace.Series(src, nodes, window))
	for _, k := range []int{1, 2, 4, 8, 16} {
		q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: window}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.HistoricOperator
		}{{"tja", tja.New()}, {"tput", tput.New()}, {"central", central.NewHistoric()}} {
			rs, _, err := historicRun(o.name, o.op, q, data, n, g)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		kSeries = append(kSeries, stats.Series{X: float64(k), Rows: rows})
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E7b: historic bytes vs k, n=36, W=%d", window), "k", kSeries))
	return nil
}

// runE8 breaks TJA's traffic down by phase across k and workload skew.
func runE8(w io.Writer, cfg RunConfig) error {
	const n, g = 36, 6
	window := cfg.scaled(256)
	nodes := make([]model.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		nodes = append(nodes, model.NodeID(i))
	}
	sources := []struct {
		name string
		src  trace.Source
	}{
		{"diurnal(correlated)", func() trace.Source { d := trace.NewDiurnal(5); d.NodeSpread = 0; return d }()},
		{"uniform(adversarial)", &trace.Uniform{Seed: 5, Min: 0, Max: 100}},
		{"walk", trace.NewRandomWalk(5, 0, 100)},
	}
	for _, s := range sources {
		data := topk.HistoricData(trace.Series(s.src, nodes, window))
		var rows []stats.RunStats
		for _, k := range []int{1, 4, 16} {
			q := topk.HistoricQuery{K: k, Agg: model.AggAvg, Window: window}
			rs, _, err := historicRun(fmt.Sprintf("tja k=%d", k), tja.New(), q, data, n, g)
			if err != nil {
				return err
			}
			if rs.Correct != 100 {
				fmt.Fprintf(w, "!! SHAPE VIOLATION: tja inexact on %s k=%d\n", s.name, k)
			}
			rows = append(rows, rs)
		}
		fmt.Fprint(w, stats.PhaseTable(fmt.Sprintf("E8: TJA phase bytes, %s, W=%d", s.name, window), rows))
	}
	return nil
}
