package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
)

// This file is the machine-readable side of the harness: kspot-bench -json
// appends one named run — micro-benchmark numbers (ns/op, allocs/op, plus
// the domain metrics tx_bytes and messages per epoch) and per-experiment
// timings — to a JSON trajectory file (BENCH_PR3.json). Runs from earlier
// PRs are preserved on re-generation, so the committed file accumulates a
// benchmark history the way EXPERIMENTS.md accumulates tables.

// MicroResult is one micro-benchmark's measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	// Domain metrics, for the operator-epoch benchmarks: what one epoch
	// costs the network, independent of host speed.
	TxBytesPerEpoch float64 `json:"tx_bytes_per_epoch,omitempty"`
	MsgsPerEpoch    float64 `json:"msgs_per_epoch,omitempty"`
	// CoordBytesPerEpoch is the coordinator tier's backhaul, for the
	// federated epoch benchmark.
	CoordBytesPerEpoch float64 `json:"coord_bytes_per_epoch,omitempty"`
	// QueriesPerSec and SubscribersPerSec are the multi-tenant serving
	// axes: sustained query steps per second of the shared-acquisition
	// scheduler, and sustained subscriber-deliveries per second of the
	// streaming hub (see internal/bench/serving.go).
	QueriesPerSec     float64 `json:"queries_per_sec,omitempty"`
	SubscribersPerSec float64 `json:"subscribers_per_sec,omitempty"`
	// RoundsPerEpoch and WireBytesPerEpoch are the federated wire-protocol
	// axes (see internal/bench/wire.go): RPC round trips and frame bytes
	// (both directions) one coordinator epoch costs per shard — the batched
	// epoch-round protocol drops rounds from 1+G to 1.
	RoundsPerEpoch    float64 `json:"rounds_per_epoch,omitempty"`
	WireBytesPerEpoch float64 `json:"wire_bytes_per_epoch,omitempty"`
	// RecoveryMs and ReshardingDowntimeEpochs are the durable-tier axes
	// (see internal/bench/durability.go): wall milliseconds to recover a
	// full RecoveryNodes-segment store from disk, and mean lock-step epochs
	// one live re-sharding migration leaves running on the old deployment
	// (a pointer so a measured 0 — a cutover faster than one epoch —
	// still serializes).
	RecoveryMs               float64  `json:"recovery_ms,omitempty"`
	ReshardingDowntimeEpochs *float64 `json:"resharding_downtime_epochs,omitempty"`
	// UsPerNodePerEpoch and Workers annotate the scale-series entries —
	// µs of epoch compute per sensor node, and the sweep worker bound the
	// entry ran at. Deliberately not omitempty: they serialize as null on
	// micros where they do not apply and on runs recorded before PR 6, so
	// the trajectory file carries the schema change visibly.
	UsPerNodePerEpoch *float64 `json:"us_per_node_per_epoch"`
	Workers           *int     `json:"workers"`
}

// ExperimentTiming is one harness experiment's single-run measurement.
type ExperimentTiming struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	NsPerOp     int64  `json:"ns_op"`
	AllocsPerOp uint64 `json:"allocs_op"`
	BytesPerOp  uint64 `json:"bytes_op"`
}

// Run is one recorded benchmark pass (one PR's entry in the trajectory).
type Run struct {
	Recorded    string             `json:"recorded"`
	Source      string             `json:"source"`
	Scale       float64            `json:"scale"`
	Micro       []MicroResult      `json:"micro"`
	Experiments []ExperimentTiming `json:"experiments,omitempty"`
}

// File is the whole trajectory file.
type File struct {
	GeneratedBy string         `json:"generated_by"`
	Note        string         `json:"note"`
	Runs        map[string]Run `json:"runs"`
}

// WriteJSON measures the current build (micro-benchmarks at full size,
// experiments at cfg.Scale) and merges the result into path under runName,
// preserving every other recorded run.
func WriteJSON(w io.Writer, path, runName string, cfg RunConfig) error {
	run := Run{
		Recorded: time.Now().UTC().Format(time.RFC3339),
		Source:   "kspot-bench -json",
		Scale:    cfg.Scale,
	}
	type microEntry struct {
		name string
		fn   func() (MicroResult, error)
	}
	micros := []microEntry{
		{"mint-epoch", func() (MicroResult, error) {
			return microOperatorEpoch(func() topk.SnapshotOperator { return mint.New() })
		}},
		{"tag-epoch", func() (MicroResult, error) {
			return microOperatorEpoch(func() topk.SnapshotOperator { return tag.New() })
		}},
		{"view-codec", func() (MicroResult, error) { return microViewCodec() }},
		{"view-merge", func() (MicroResult, error) { return microViewMerge() }},
		{"fed-mint-epoch", func() (MicroResult, error) { return microFederatedEpoch() }},
		{"fed-historic-epoch", func() (MicroResult, error) { return microFederatedHistoric() }},
		{"shared-acquisition-m1", func() (MicroResult, error) { return microSharedAcquisition(1, true) }},
		{"shared-acquisition-m8", func() (MicroResult, error) { return microSharedAcquisition(8, true) }},
		{"shared-acquisition-m64", func() (MicroResult, error) { return microSharedAcquisition(64, true) }},
		{"private-acquisition-m8", func() (MicroResult, error) { return microSharedAcquisition(8, false) }},
		{"hub-fanout-64", func() (MicroResult, error) { return microHubFanOut(64) }},
		{"wire-epoch-percall", func() (MicroResult, error) { return microWireEpochRTT(WirePerCallSerialized) }},
		{"wire-epoch-overlapped", func() (MicroResult, error) { return microWireEpochRTT(WirePerCallOverlapped) }},
		{"wire-epoch-batched", func() (MicroResult, error) { return microWireEpochRTT(WireBatched) }},
		{"store-recovery", func() (MicroResult, error) { return microStoreRecovery() }},
		{"reshard-downtime", func() (MicroResult, error) { return microReshardDowntime() }},
	}
	// The scale series always runs sequentially (workers = 1) so the
	// µs-per-node trajectory is comparable across hosts and PRs; the
	// speedup entry re-measures scale-4000 at the configured worker bound.
	for _, n := range ScaleSeriesSizes(cfg) {
		n := n
		micros = append(micros, microEntry{fmt.Sprintf("mint-epoch-scale-%d", n), func() (MicroResult, error) {
			return microScaleMintEpoch(n, 1)
		}})
	}
	if w := cfg.Parallel; w > 1 {
		micros = append(micros, microEntry{fmt.Sprintf("mint-epoch-scale-%d-parallel", SpeedupScaleSize), func() (MicroResult, error) {
			return microScaleMintEpoch(SpeedupScaleSize, w)
		}})
	}
	for _, m := range micros {
		fmt.Fprintf(w, "bench %-28s ... ", m.name)
		res, err := m.fn()
		if err != nil {
			return fmt.Errorf("bench: micro %s: %w", m.name, err)
		}
		res.Name = m.name
		run.Micro = append(run.Micro, res)
		fmt.Fprintf(w, "%12.0f ns/op %6d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
	}
	for _, e := range All() {
		fmt.Fprintf(w, "exp   %-28s ... ", e.ID)
		t, err := timeExperiment(e, cfg)
		if err != nil {
			return fmt.Errorf("bench: experiment %s: %w", e.ID, err)
		}
		run.Experiments = append(run.Experiments, t)
		fmt.Fprintf(w, "%12d ns %9d allocs\n", t.NsPerOp, t.AllocsPerOp)
	}
	return mergeJSON(path, runName, run)
}

// mergeJSON folds a run into the trajectory file, creating it if needed.
func mergeJSON(path, runName string, run Run) error {
	f := File{
		GeneratedBy: "kspot-bench -json",
		Note: "Benchmark trajectory: one run per PR (plus recorded baselines). " +
			"Regenerate with `kspot-bench -json -json-run <name>`; existing runs are preserved.",
		Runs: map[string]Run{},
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("bench: existing %s is not a trajectory file: %w", path, err)
		}
		if f.Runs == nil {
			f.Runs = map[string]Run{}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Runs[runName] = run
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunOperatorEpochBench is the shared measurement body of the operator
// epoch benchmarks: attach on the standard deployment, run the creation
// epoch as warm-up, reset accounting, then measure b.N steady-state epochs.
// The module-root BenchmarkMintEpoch/BenchmarkTagEpoch and the -json
// trajectory both call this, so they always measure the identical loop.
// Returns per-epoch tx bytes and messages.
func RunOperatorEpochBench(b *testing.B, op topk.SnapshotOperator) (txBytesPerEpoch, msgsPerEpoch float64) {
	net, src, q, err := StandardDeployment()
	if err != nil {
		b.Fatal(err)
	}
	if err := op.Attach(net, q); err != nil {
		b.Fatal(err)
	}
	readings := topk.SenseEpoch(net, src, 0)
	if _, err := op.Epoch(0, readings); err != nil {
		b.Fatal(err)
	}
	net.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := model.Epoch(i + 1)
		rd := topk.SenseEpoch(net, src, e)
		if _, err := op.Epoch(e, rd); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		txBytesPerEpoch = float64(net.Counter.TotalTxBytes()) / float64(b.N)
		msgsPerEpoch = float64(net.Counter.TotalMessages()) / float64(b.N)
	}
	return txBytesPerEpoch, msgsPerEpoch
}

// RunViewCodecBench is the shared body of the view-codec benchmark: a
// 16-group view's encode+decode round-trip through caller-owned buffers
// (the steady-state wire path).
func RunViewCodecBench(b *testing.B) {
	v := model.NewView()
	for i := 0; i < 64; i++ {
		v.Add(model.Reading{Node: model.NodeID(i), Group: model.GroupID(i % 16), Value: model.Value(i)})
	}
	buf := make([]byte, 0, model.ViewWireSize(v))
	dec := model.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = model.AppendView(buf[:0], v)
		if err := model.DecodeViewInto(dec, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// RunViewMergeBench is the shared body of the view-merge benchmark: the
// TAG merge path folding two 16-group views into a reused accumulator.
func RunViewMergeBench(b *testing.B) {
	a := model.NewView()
	c := model.NewView()
	for i := 0; i < 64; i++ {
		a.Add(model.Reading{Node: model.NodeID(i), Group: model.GroupID(i % 16), Value: model.Value(i)})
		c.Add(model.Reading{Node: model.NodeID(i + 64), Group: model.GroupID(i % 16), Value: model.Value(i)})
	}
	m := model.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.MergeView(a)
		m.MergeView(c)
		if m.Len() != 16 {
			b.Fatal("merge lost groups")
		}
	}
}

// micro converts a testing.Benchmark result into a MicroResult; r.N == 0
// means the body failed (b.Fatal aborts the run).
func micro(r testing.BenchmarkResult, txBytes, msgs float64) (MicroResult, error) {
	if r.N == 0 {
		return MicroResult{}, fmt.Errorf("benchmark body failed")
	}
	return MicroResult{
		Iterations:      r.N,
		NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
		TxBytesPerEpoch: txBytes,
		MsgsPerEpoch:    msgs,
	}, nil
}

// microOperatorEpoch measures one steady-state operator epoch on the
// standard deployment — the same body as the module-root benchmarks.
func microOperatorEpoch(mk func() topk.SnapshotOperator) (MicroResult, error) {
	var txBytes, msgs float64
	r := testing.Benchmark(func(b *testing.B) {
		txBytes, msgs = RunOperatorEpochBench(b, mk())
	})
	return micro(r, txBytes, msgs)
}

// microScaleMintEpoch measures one steady-state MINT epoch on the flat
// scale-<n> deployment at the given sweep worker bound, annotating the
// result with µs-per-node-per-epoch and the worker count. The deployment
// is built once and reused across the benchmark's re-invocations — the
// O(n²) link construction at scale-100000 costs minutes, the epochs do not.
func microScaleMintEpoch(n, workers int) (MicroResult, error) {
	net, src, q, err := scaleDeployment(n, workers)
	if err != nil {
		return MicroResult{}, err
	}
	nodes := len(net.Topology().SensorNodes())
	var txBytes, msgs float64
	r := testing.Benchmark(func(b *testing.B) {
		txBytes, msgs = RunScaleMintEpochBenchOn(b, net, src, q)
	})
	res, err := micro(r, txBytes, msgs)
	if err != nil {
		return res, err
	}
	us := res.NsPerOp / 1e3 / float64(nodes)
	res.UsPerNodePerEpoch = &us
	res.Workers = &workers
	return res, nil
}

// microSharedAcquisition measures m same-signature queries stepping over
// the standard deployment — shared: one acquisition group; private: the
// pre-sharing one-group-per-query baseline.
func microSharedAcquisition(m int, shared bool) (MicroResult, error) {
	var qps float64
	r := testing.Benchmark(func(b *testing.B) {
		qps = RunSharedAcquisitionBench(b, m, shared)
	})
	res, err := micro(r, 0, 0)
	res.QueriesPerSec = qps
	return res, err
}

// microHubFanOut measures the streaming hub's fan-out of one epoch stream
// into subs concurrent subscribers.
func microHubFanOut(subs int) (MicroResult, error) {
	var rate float64
	r := testing.Benchmark(func(b *testing.B) {
		rate = RunHubFanOutBench(b, subs)
	})
	res, err := micro(r, 0, 0)
	res.SubscribersPerSec = rate
	return res, err
}

// microWireEpochRTT measures one leg of the wire epoch-RTT benchmark:
// wall latency of one federated epoch at an injected link delay, with the
// protocol's round trips and wire bytes per epoch alongside so the
// trajectory records the 1+G → 1 collapse independent of host speed.
func microWireEpochRTT(leg WireLeg) (MicroResult, error) {
	var rounds, bytes float64
	r := testing.Benchmark(func(b *testing.B) {
		rounds, bytes = RunWireEpochRTTBench(b, leg, WireRTTLinkDelay, WireRTTGroups)
	})
	res, err := micro(r, 0, 0)
	res.RoundsPerEpoch = rounds
	res.WireBytesPerEpoch = bytes
	return res, err
}

// microViewCodec measures the view codec round-trip.
func microViewCodec() (MicroResult, error) {
	return micro(testing.Benchmark(RunViewCodecBench), 0, 0)
}

// microViewMerge measures the view merge path.
func microViewMerge() (MicroResult, error) {
	return micro(testing.Benchmark(RunViewMergeBench), 0, 0)
}

// microFederatedEpoch measures one steady-state federated MINT epoch on
// the sharded scale deployment (scale-1000 in 4 shards), coordinator
// merge included.
func microFederatedEpoch() (MicroResult, error) {
	var txBytes, msgs, coordBytes float64
	r := testing.Benchmark(func(b *testing.B) {
		txBytes, msgs, coordBytes = RunFederatedMintEpochBench(b)
	})
	res, err := micro(r, txBytes, msgs)
	res.CoordBytesPerEpoch = coordBytes
	return res, err
}

// microFederatedHistoric measures one full federated historic execution
// (per-shard TJA + two-phase coordinator merge) on the sharded scale
// deployment.
func microFederatedHistoric() (MicroResult, error) {
	var txBytes, coordBytes float64
	r := testing.Benchmark(func(b *testing.B) {
		txBytes, coordBytes = RunFederatedHistoricBench(b)
	})
	res, err := micro(r, txBytes, 0)
	res.CoordBytesPerEpoch = coordBytes
	return res, err
}

// timeExperiment runs one experiment once at the configured scale and
// measures wall time and heap churn via MemStats deltas — coarse but cheap,
// and enough to catch an experiment's cost regressing across PRs.
func timeExperiment(e Experiment, cfg RunConfig) (ExperimentTiming, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := e.Run(io.Discard, cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return ExperimentTiming{}, err
	}
	return ExperimentTiming{
		ID:          e.ID,
		Title:       e.Title,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
	}, nil
}
