package bench

// The wire epoch-RTT benchmark (PR 9): what one federated epoch costs in
// round trips when the socket has real propagation latency. wire.Faults'
// LinkDelay leg injects a symmetric per-frame delay on the client's
// socket path (RTT = 2×LinkDelay), and three legs drive the same G-group
// epoch against a real shard server:
//
//   - per-call-serialized: sense, then each group's acquire back to back —
//     the pre-PR-9 protocol shape, (1+G) round trips per epoch;
//   - per-call-overlapped: sense, then the G acquires issued concurrently
//     on the pipelined connection — 2 round trips of wall clock;
//   - batched: one MsgEpochRound frame carrying the sense and every
//     group's acquisition — 1 round trip.
//
// BenchmarkWireEpochRTT (module root) and the BENCH_PR9.json trajectory
// entries both run these bodies; rounds_per_epoch and wire_bytes_per_epoch
// record the protocol's cost independent of host speed.

import (
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"
	"time"

	"kspot/internal/config"
	"kspot/internal/model"
	"kspot/internal/wire"
)

// WireRTTGroups is the shared-acquisition group count G of the RTT
// benchmark: a per-call epoch is 1+G round trips, a batched epoch is one.
const WireRTTGroups = 4

// WireRTTLinkDelay is the injected one-way propagation delay of the
// benchmark legs (RTT = 2×WireRTTLinkDelay) — large against loopback
// scheduling noise, small enough to keep the benchmark quick.
const WireRTTLinkDelay = time.Millisecond

// WireLeg selects one protocol shape of the epoch-RTT benchmark.
type WireLeg int

const (
	WirePerCallSerialized WireLeg = iota
	WirePerCallOverlapped
	WireBatched
)

// String names the leg for reports.
func (l WireLeg) String() string {
	switch l {
	case WirePerCallSerialized:
		return "per-call-serialized"
	case WirePerCallOverlapped:
		return "per-call-overlapped"
	case WireBatched:
		return "batched"
	}
	return fmt.Sprintf("leg-%d", int(l))
}

// wireRig is one leg's deployment: a real shard server for the Figure-3
// scenario on loopback, dialed by one client with link delay armed.
type wireRig struct {
	srv  *wire.Server
	cl   *wire.Client
	qids []uint32
}

func newWireRig(linkDelay time.Duration, groups int, batched bool) (*wireRig, func(), error) {
	scen := config.Figure3Scenario()
	srv, err := wire.NewServer(wire.ServerConfig{Scenario: scen, Shard: 0})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	go srv.Serve(ln)
	roster := make([]model.NodeID, 0, len(scen.Nodes))
	for _, n := range scen.Nodes {
		roster = append(roster, model.NodeID(n.ID))
	}
	slices.Sort(roster)
	cl, err := wire.Dial(wire.ClientConfig{
		Addr:              ln.Addr().String(),
		Scenario:          scen.Name,
		Shard:             0,
		Shards:            1,
		Nodes:             len(scen.Nodes),
		Roster:            roster,
		DisableEpochRound: !batched,
		Faults:            &wire.Faults{LinkDelay: linkDelay},
	})
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	rig := &wireRig{srv: srv, cl: cl, qids: make([]uint32, groups)}
	for i := range rig.qids {
		rig.qids[i] = uint32(i + 1)
		// G separately attached queries = G shared-acquisition groups; the
		// SQL is the same, the protocol cost per group is what matters.
		if err := cl.Attach(rig.qids[i], "mint", "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid"); err != nil {
			cl.Close()
			srv.Close()
			return nil, nil, err
		}
	}
	return rig, func() { cl.Close(); srv.Close() }, nil
}

// epoch drives one coordinator epoch in the leg's protocol shape.
func (r *wireRig) epoch(e model.Epoch, leg WireLeg) error {
	switch leg {
	case WireBatched:
		_, results, err := r.cl.EpochRound(e, r.qids)
		if err != nil {
			return err
		}
		for _, g := range results {
			if g.Err != nil {
				return g.Err
			}
		}
	case WirePerCallOverlapped:
		if _, err := r.cl.Sense(e); err != nil {
			return err
		}
		errs := make([]error, len(r.qids))
		var wg sync.WaitGroup
		for i, q := range r.qids {
			wg.Add(1)
			go func(i int, q uint32) {
				defer wg.Done()
				_, errs[i] = r.cl.Acquire(q, e)
			}(i, q)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	default: // WirePerCallSerialized
		if _, err := r.cl.Sense(e); err != nil {
			return err
		}
		for _, q := range r.qids {
			if _, err := r.cl.Acquire(q, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunWireEpochRTTBench is the shared measurement body: b.N steady-state
// epochs of one leg (the attach and a warm-up epoch are off the timer),
// returning RPC round trips and wire bytes (both directions, frame
// headers included) per epoch.
func RunWireEpochRTTBench(b *testing.B, leg WireLeg, linkDelay time.Duration, groups int) (roundsPerEpoch, bytesPerEpoch float64) {
	rig, cleanup, err := newWireRig(linkDelay, groups, leg == WireBatched)
	if err != nil {
		b.Fatal(err)
	}
	defer cleanup()
	if err := rig.epoch(0, leg); err != nil {
		b.Fatal(err)
	}
	m0 := rig.cl.Metrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.epoch(model.Epoch(i+1), leg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m1 := rig.cl.Metrics()
	if b.N > 0 {
		n := float64(b.N)
		roundsPerEpoch = float64(m1.Calls-m0.Calls) / n
		bytesPerEpoch = float64((m1.BytesOut - m0.BytesOut) + (m1.BytesIn - m0.BytesIn)) / n
	}
	return roundsPerEpoch, bytesPerEpoch
}

// WireRTTLegResult is one leg's measurement of MeasureWireEpochRTT.
type WireRTTLegResult struct {
	Leg            WireLeg
	NsPerEpoch     float64
	RoundsPerEpoch float64
	BytesPerEpoch  float64
}

// MeasureWireEpochRTT runs all three legs for the given epoch count and
// returns them in leg order (serialized, overlapped, batched). The
// speedup the batched protocol buys is serialized/batched wall clock —
// ideally 1+G at a link-dominated RTT.
func MeasureWireEpochRTT(linkDelay time.Duration, groups, epochs int) ([]WireRTTLegResult, error) {
	legs := []WireLeg{WirePerCallSerialized, WirePerCallOverlapped, WireBatched}
	out := make([]WireRTTLegResult, 0, len(legs))
	for _, leg := range legs {
		rig, cleanup, err := newWireRig(linkDelay, groups, leg == WireBatched)
		if err != nil {
			return nil, err
		}
		if err := rig.epoch(0, leg); err != nil {
			cleanup()
			return nil, fmt.Errorf("bench: wire-rtt %s warm-up: %w", leg, err)
		}
		m0 := rig.cl.Metrics()
		start := time.Now()
		for i := 0; i < epochs; i++ {
			if err := rig.epoch(model.Epoch(i+1), leg); err != nil {
				cleanup()
				return nil, fmt.Errorf("bench: wire-rtt %s epoch %d: %w", leg, i+1, err)
			}
		}
		elapsed := time.Since(start)
		m1 := rig.cl.Metrics()
		cleanup()
		out = append(out, WireRTTLegResult{
			Leg:            leg,
			NsPerEpoch:     float64(elapsed.Nanoseconds()) / float64(epochs),
			RoundsPerEpoch: float64(m1.Calls-m0.Calls) / float64(epochs),
			BytesPerEpoch:  float64((m1.BytesOut-m0.BytesOut)+(m1.BytesIn-m0.BytesIn)) / float64(epochs),
		})
	}
	return out, nil
}
