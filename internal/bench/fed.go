package bench

import (
	"testing"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tja"
)

// FederatedScaleSize and FederatedShardCount fix the federated measurement
// deployment: the scale-1000 field split into 4 shard networks — the
// sharded-vs-flat conformance configuration, so the benchmark measures
// exactly the deployment the correctness suite pins.
const (
	FederatedScaleSize  = 1000
	FederatedShardCount = 4
)

// RunFederatedMintEpochBench is the shared measurement body of the
// federated operator benchmark: MINT attached per shard on the sharded
// scale deployment, one coordinator-tier merge per epoch. The creation
// epoch is warm-up; b.N steady-state federated epochs are measured.
// Returns per-epoch radio tx bytes and messages (summed over the shards)
// plus per-epoch coordinator backhaul bytes.
func RunFederatedMintEpochBench(b *testing.B) (txBytesPerEpoch, msgsPerEpoch, coordBytesPerEpoch float64) {
	scen, err := config.ScaleScenarioShards(FederatedScaleSize, FederatedShardCount)
	if err != nil {
		b.Fatal(err)
	}
	subs, err := scen.ShardScenarios()
	if err != nil {
		b.Fatal(err)
	}
	src, err := scen.Source() // the flat source, shared by every shard
	if err != nil {
		b.Fatal(err)
	}
	q := topk.SnapshotQuery{K: 3, Agg: model.AggAvg, Range: soundRange()}
	nets := make([]*sim.Network, 0, len(subs))
	deps := make([]*engine.Deployment, 0, len(subs))
	ops := make([]engine.EpochRunner, 0, len(subs))
	for i, sub := range subs {
		net, err := sub.Network()
		if err != nil {
			b.Fatal(err)
		}
		op := mint.New()
		if err := op.Attach(net, q); err != nil {
			b.Fatal(err)
		}
		nets = append(nets, net)
		deps = append(deps, engine.NewDeployment(scen.ShardName(i), net, src))
		ops = append(ops, op)
	}
	var stats fed.Stats
	merger, err := fed.New(q, fed.Config{}, &stats)
	if err != nil {
		b.Fatal(err)
	}
	coord := engine.NewCoordinator(deps...)

	if out := coord.Epoch(0, ops, nil, merger.Merge); out.Err != nil {
		b.Fatal(out.Err)
	}
	for _, net := range nets {
		net.Reset()
	}
	warmCoord := stats.Snapshot().TxBytes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := coord.Epoch(model.Epoch(i+1), ops, nil, merger.Merge)
		if out.Err != nil {
			b.Fatal(out.Err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		var tx, msgs int
		for _, net := range nets {
			tx += net.Counter.TotalTxBytes()
			msgs += net.Counter.TotalMessages()
		}
		txBytesPerEpoch = float64(tx) / float64(b.N)
		msgsPerEpoch = float64(msgs) / float64(b.N)
		coordBytesPerEpoch = float64(stats.Snapshot().TxBytes-warmCoord) / float64(b.N)
	}
	return txBytesPerEpoch, msgsPerEpoch, coordBytesPerEpoch
}

// RunFederatedHistoricBench is the shared measurement body of the
// federated historic benchmark: one full TOP-K ... WITH HISTORY execution
// per iteration on the sharded scale deployment — per-shard TJA over the
// buffered windows, two-phase threshold merge at the coordinator.
// Returns per-execution radio tx bytes (summed over the shards) and
// coordinator backhaul bytes.
func RunFederatedHistoricBench(b *testing.B) (txBytesPerRun, coordBytesPerRun float64) {
	scen, err := config.ScaleScenarioShards(FederatedScaleSize, FederatedShardCount)
	if err != nil {
		b.Fatal(err)
	}
	subs, err := scen.ShardScenarios()
	if err != nil {
		b.Fatal(err)
	}
	src, err := scen.Source() // the flat source, shared by every shard
	if err != nil {
		b.Fatal(err)
	}
	q := topk.HistoricQuery{K: 4, Agg: model.AggAvg, Window: 16}
	nets := make([]*sim.Network, 0, len(subs))
	shards := make([]fed.HistoricShard, 0, len(subs))
	for _, sub := range subs {
		net, err := sub.Network()
		if err != nil {
			b.Fatal(err)
		}
		series, err := storage.BufferSeries(net.Topology().SensorNodes(), q.Window, src.Sample)
		if err != nil {
			b.Fatal(err)
		}
		nets = append(nets, net)
		shards = append(shards, &fed.OperatorShard{
			Op: tja.New(), Tp: net, Q: q, Data: topk.HistoricData(series),
		})
	}
	var stats fed.Stats
	merger, err := fed.NewHistoric(q, fed.Config{}, &stats)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merger.Run(shards, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		tx := 0
		for _, net := range nets {
			tx += net.Counter.TotalTxBytes()
		}
		txBytesPerRun = float64(tx) / float64(b.N)
		coordBytesPerRun = float64(stats.Snapshot().TxBytes) / float64(b.N)
	}
	return txBytesPerRun, coordBytesPerRun
}
