package bench

import (
	"testing"

	"kspot/internal/model"
	"kspot/internal/storage"
)

// TestStoreRecoveryBenchBodyRoundTrips pins the recovery benchmark's
// setup: the populated store it measures actually recovers to the full
// cursor, so recovery_ms times real segment replay, not an empty open.
func TestStoreRecoveryBenchBodyRoundTrips(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.OpenStore(dir, storage.DefaultStoreWindow)
	if err != nil {
		t.Fatal(err)
	}
	readings := make(map[model.NodeID]model.Reading, RecoveryNodes)
	for e := 0; e < RecoveryEpochs; e++ {
		for n := 1; n <= RecoveryNodes; n++ {
			readings[model.NodeID(n)] = model.Reading{Node: model.NodeID(n), Epoch: model.Epoch(e), Value: model.Value(n)}
		}
		st.RecordReadings(model.Epoch(e), readings)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := storage.OpenStore(dir, storage.DefaultStoreWindow)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if e, ok := rec.Cursor(); !ok || e != RecoveryEpochs-1 {
		t.Fatalf("recovered cursor %v/%v, want %d", e, ok, RecoveryEpochs-1)
	}
	if s := rec.Stats(); s.Nodes != RecoveryNodes {
		t.Fatalf("recovered %d nodes, want %d", s.Nodes, RecoveryNodes)
	}
}

// TestMeasureReshardDowntimeSmoke runs one real 2→4 migration under
// background stepping — the reshard-downtime trajectory entry's body.
func TestMeasureReshardDowntimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live migration measurement in -short mode")
	}
	ns, down, err := MeasureReshardDowntime(1)
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatalf("migration took %v ns", ns)
	}
	if down < 0 {
		t.Fatalf("downtime %v epochs", down)
	}
}
