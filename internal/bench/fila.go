package bench

import (
	"fmt"
	"io"

	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/fila"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/tag"
	"kspot/internal/trace"
)

func init() {
	register(Experiment{ID: "e14", Title: "Extension: FILA filters vs MINT vs TAG (per-node monitoring)", Run: runE14})
}

// runE14 compares the filter-based monitoring approach (FILA, cited by the
// paper as MINT's competitor class) against MINT and TAG on the per-node
// top-k problem, across workload stability. FILA's contract is exact
// membership with possibly stale member scores, so the table reports both
// set-correctness and exact-correctness.
func runE14(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(100)
	const n = 64
	// Part A: room-activity workload — the membership boundary sits in
	// dense values and churns; FILA stays set-exact and far under TAG,
	// with MINT slightly ahead (its margin absorbs boundary wobble).
	if err := runE14Churn(w, epochs, n, 4); err != nil {
		return err
	}
	// Part B: a static skewed field (Zipf, low noise) — values barely
	// move, so FILA's filters go silent while MINT still re-reports its
	// answer set every epoch: the regime where filters win outright.
	return runE14Static(w, epochs, n, 4)
}

// runE14Churn runs the comparison on the jittering room-activity workload.
func runE14Churn(w io.Writer, epochs, n, k int) error {
	for _, period := range []uint32{20, 5} {
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.SnapshotOperator
		}{{"fila", fila.New()}, {"mint", mint.New()}, {"tag", tag.New()}} {
			net, err := gridNetwork(n, n, sim.DefaultOptions())
			if err != nil {
				return err
			}
			net.Placement.RegroupRoundRobin(n)
			src := trace.NewRoomActivity(7, net.Placement.Groups, n)
			src.Period = model.Epoch(period)
			q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: soundRange()}

			// Manual run so we can score set-correctness for FILA.
			if err := o.op.Attach(net, q); err != nil {
				return err
			}
			warm := topk.SenseEpoch(net, src, 0)
			if _, err := o.op.Epoch(0, warm); err != nil {
				return err
			}
			net.Reset()
			exactPct, setPct := 0, 0
			for e := model.Epoch(1); int(e) <= epochs; e++ {
				readings := topk.SenseEpoch(net, src, e)
				got, err := o.op.Epoch(e, readings)
				if err != nil {
					return err
				}
				want := topk.ExactSnapshot(readings, q)
				if model.EqualAnswers(got, want) {
					exactPct++
				}
				if fila.SetCorrect(got, want) {
					setPct++
				}
			}
			rs := stats.Collect(o.name, net, epochs)
			rs.Correct = 100 * float64(exactPct) / float64(epochs)
			rs.Recall = float64(setPct) / float64(epochs) // set-correct fraction
			rows = append(rows, rs)
		}
		fmt.Fprint(w, stats.Table(
			fmt.Sprintf("E14a: per-node top-%d, room activity, churn period %d, %d epochs (recall column = set-correct fraction)",
				k, period, epochs), rows))
		byName := map[string]stats.RunStats{}
		for _, r := range rows {
			byName[r.Algorithm] = r
		}
		if 2*byName["fila"].TxBytes >= byName["tag"].TxBytes {
			fmt.Fprintf(w, "!! SHAPE VIOLATION: fila bytes %d not under half of tag %d\n", byName["fila"].TxBytes, byName["tag"].TxBytes)
		}
		if byName["fila"].Recall < 0.99 {
			fmt.Fprintf(w, "!! SHAPE VIOLATION: fila set-correct only %.2f\n", byName["fila"].Recall)
		}
		if byName["mint"].Correct < 100 {
			fmt.Fprintf(w, "!! SHAPE VIOLATION: mint not exact\n")
		}
	}
	return nil
}

// runE14Static runs the comparison on a near-static Zipf field.
func runE14Static(w io.Writer, epochs, n, k int) error {
	var rows []stats.RunStats
	for _, o := range []struct {
		name string
		op   topk.SnapshotOperator
	}{{"fila", fila.New()}, {"mint", mint.New()}, {"tag", tag.New()}} {
		net, err := gridNetwork(n, n, sim.DefaultOptions())
		if err != nil {
			return err
		}
		net.Placement.RegroupRoundRobin(n)
		src := trace.NewZipf(9, net.Placement.Groups, 1.5, 1000)
		src.Noise = 2 // a calm field: readings barely move
		q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 1100}}

		if err := o.op.Attach(net, q); err != nil {
			return err
		}
		warm := topk.SenseEpoch(net, src, 0)
		if _, err := o.op.Epoch(0, warm); err != nil {
			return err
		}
		net.Reset()
		exactPct, setPct := 0, 0
		for e := model.Epoch(1); int(e) <= epochs; e++ {
			readings := topk.SenseEpoch(net, src, e)
			got, err := o.op.Epoch(e, readings)
			if err != nil {
				return err
			}
			want := topk.ExactSnapshot(readings, q)
			if model.EqualAnswers(got, want) {
				exactPct++
			}
			if fila.SetCorrect(got, want) {
				setPct++
			}
		}
		rs := stats.Collect(o.name, net, epochs)
		rs.Correct = 100 * float64(exactPct) / float64(epochs)
		rs.Recall = float64(setPct) / float64(epochs)
		rows = append(rows, rs)
	}
	fmt.Fprint(w, stats.Table(
		fmt.Sprintf("E14b: per-node top-%d, static Zipf field, %d epochs (recall column = set-correct fraction)", k, epochs), rows))
	byName := map[string]stats.RunStats{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	if byName["fila"].TxBytes >= byName["mint"].TxBytes {
		fmt.Fprintf(w, "!! SHAPE VIOLATION: static-field fila bytes %d not below mint %d\n", byName["fila"].TxBytes, byName["mint"].TxBytes)
	}
	if byName["fila"].Recall < 0.99 {
		fmt.Fprintf(w, "!! SHAPE VIOLATION: fila set-correct only %.2f\n", byName["fila"].Recall)
	}
	return nil
}
