package bench

import (
	"testing"

	"kspot/internal/config"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/trace"
)

// This file is the scale series of the benchmark trajectory: µs of epoch
// compute per sensor node for a steady-state MINT epoch across deployment
// sizes (the road to scale-100k), plus the parallel-vs-sequential sweep
// speedup at scale-4000. The series runs every size at one sweep worker so
// the per-node trajectory stays comparable across hosts and PRs; the
// speedup entry re-measures scale-4000 at the configured worker bound.

// SpeedupScaleSize fixes the deployment of the parallel-vs-sequential
// speedup measurement: scale-4000, the largest committed scenario.
const SpeedupScaleSize = 4000

// ScaleSeriesSizes returns the deployment sizes of the µs-per-node-per-epoch
// scale series at the configured run scale. The two committed scenario sizes
// always run; the big fields are gated on -scale because their O(n²)
// disk-link construction dominates wall time (the epoch itself stays cheap):
// scale-16000 needs -scale ≥ 0.5 and scale-100000 the full -scale 1.
func ScaleSeriesSizes(cfg RunConfig) []int {
	sizes := []int{1000, 4000}
	s := cfg.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	if s >= 0.5 {
		sizes = append(sizes, 16000)
	}
	if s >= 1 {
		sizes = append(sizes, 100000)
	}
	return sizes
}

// scaleDeployment builds the flat scale-<n> deployment with the given sweep
// worker bound. Callers build it once per series entry and reuse it across
// benchmark rounds: the scale generator's O(n²) link construction costs
// minutes at scale-100000, far beyond the epochs being measured.
func scaleDeployment(n, workers int) (*sim.Network, trace.Source, topk.SnapshotQuery, error) {
	scen, err := config.ScaleScenario(n)
	if err != nil {
		return nil, nil, topk.SnapshotQuery{}, err
	}
	net, err := scen.Network()
	if err != nil {
		return nil, nil, topk.SnapshotQuery{}, err
	}
	net.SetParallel(workers)
	src, err := scen.Source()
	if err != nil {
		return nil, nil, topk.SnapshotQuery{}, err
	}
	q := topk.SnapshotQuery{K: 3, Agg: model.AggAvg, Range: soundRange()}
	return net, src, q, nil
}

// RunScaleMintEpochBenchOn is the measurement body of the scale-series
// benchmarks: a fresh MINT operator attaches to the prebuilt deployment,
// runs its creation epoch as warm-up, then b.N steady-state epochs are
// measured — the RunOperatorEpochBench loop with the network construction
// hoisted out of the benchmark re-invocations. Returns per-epoch tx bytes
// and messages.
func RunScaleMintEpochBenchOn(b *testing.B, net *sim.Network, src trace.Source, q topk.SnapshotQuery) (txBytesPerEpoch, msgsPerEpoch float64) {
	op := mint.New()
	if err := op.Attach(net, q); err != nil {
		b.Fatal(err)
	}
	readings := topk.SenseEpoch(net, src, 0)
	if _, err := op.Epoch(0, readings); err != nil {
		b.Fatal(err)
	}
	net.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := model.Epoch(i + 1)
		rd := topk.SenseEpoch(net, src, e)
		if _, err := op.Epoch(e, rd); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		txBytesPerEpoch = float64(net.Counter.TotalTxBytes()) / float64(b.N)
		msgsPerEpoch = float64(net.Counter.TotalMessages()) / float64(b.N)
	}
	return txBytesPerEpoch, msgsPerEpoch
}

// RunScaleMintEpochBench builds scale-<n> at the worker bound and measures
// one steady-state MINT epoch — the module-root benchmark entry point (the
// -json path hoists the build out itself, see microScaleMintEpoch).
func RunScaleMintEpochBench(b *testing.B, n, workers int) (txBytesPerEpoch, msgsPerEpoch float64) {
	net, src, q, err := scaleDeployment(n, workers)
	if err != nil {
		b.Fatal(err)
	}
	return RunScaleMintEpochBenchOn(b, net, src, q)
}
