package bench

import (
	"fmt"
	"io"

	"kspot/internal/config"
	"kspot/internal/gui"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/naive"
	"kspot/internal/topk/tag"
	"kspot/internal/trace"
)

func init() {
	register(Experiment{ID: "e1", Title: "Figure 1 / §III-A: correctness of in-network pruning", Run: runE1})
	register(Experiment{ID: "e2", Title: "Figure 3: Top-3 demo over 14 nodes in 6 clusters", Run: runE2})
	register(Experiment{ID: "e3", Title: "System Panel: snapshot traffic, MINT vs baselines", Run: runE3})
	register(Experiment{ID: "e4", Title: "System Panel: energy and network lifetime", Run: runE4})
	register(Experiment{ID: "e5", Title: "MINT scaling with network size", Run: runE5})
	register(Experiment{ID: "e6", Title: "K sensitivity", Run: runE6})
}

// runE1 reproduces the paper's worked example: on the exact Figure 1
// deployment and routing tree, MINT (and TAG, and centralized) return
// (C, 75) while naive greedy pruning returns the erroneous (D, 76.5).
func runE1(w io.Writer, cfg RunConfig) error {
	mkNet := func() (*sim.Network, error) { return config.Figure1Scenario().Network() }
	src := trace.Figure1Source()
	q := topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: soundRange()}
	epochs := cfg.scaled(10)

	rows, err := snapshotSuite(mkNet, src, q, epochs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, stats.Table("E1: Figure 1, k=1, AVG(sound), 9 sensors / 4 rooms", rows))

	// Show the answers explicitly, as the paper narrates them.
	net, err := mkNet()
	if err != nil {
		return err
	}
	r := &topk.Runner{Net: net, Source: src, Op: mint.New(), Query: q}
	res, err := r.Run(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MINT answer : %v (paper: room C, 75)\n", res[0].Answers)
	fmt.Fprintf(w, "exact       : %v\n", res[0].Exact)

	netN, err := mkNet()
	if err != nil {
		return err
	}
	rn := &topk.Runner{Net: netN, Source: src, Op: naive.New(), Query: q}
	resN, err := rn.Run(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "naive answer: %v (paper: the wrongful (D, 76.5))\n", resN[0].Answers)
	if len(resN[0].Answers) == 0 || resN[0].Answers[0].Group != trace.Fig1RoomD {
		fmt.Fprintln(w, "!! SHAPE VIOLATION: naive did not reproduce the (D,76.5) error")
	}
	checkShape(w, rows)
	return nil
}

// runE2 reproduces the Figure 3 demo: a continuous Top-3 query over the
// 14-node, 6-cluster conference deployment, with the Display Panel.
func runE2(w io.Writer, cfg RunConfig) error {
	scen := config.Figure3Scenario()
	// E2 is a 14-node scenario: cheap enough to always run full length,
	// which the churn-amortized savings check needs.
	epochs := 60
	q := topk.SnapshotQuery{K: 3, Agg: model.AggAvg, Range: soundRange()}
	src, err := scen.Source()
	if err != nil {
		return err
	}
	mkNet := func() (*sim.Network, error) { return scen.Network() }
	rows, err := snapshotSuite(mkNet, src, q, epochs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, stats.Table(fmt.Sprintf("E2: Figure 3 demo, k=3, %d epochs", epochs), rows))
	// Top-3 of six clusters leaves three suppressible groups on a 14-node
	// deployment: exact MINT lands within ~10% of TAG (see E6's k-trend);
	// the flagship k=1 query below must show real savings.
	checkShapeTol(w, rows, 1.10)
	q1 := topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: soundRange()}
	rows1, err := snapshotSuite(mkNet, src, q1, epochs)
	if err != nil {
		return err
	}
	fmt.Fprint(w, stats.Table(fmt.Sprintf("E2: Figure 3 demo, flagship k=1, %d epochs", epochs), rows1))
	checkBigSavings(w, rows1, 15)

	// Render the Display Panel at the final epoch, bullets and all.
	net, err := scen.Network()
	if err != nil {
		return err
	}
	r := &topk.Runner{Net: net, Source: src, Op: mint.New(), Query: q}
	results, err := r.Run(epochs)
	if err != nil {
		return err
	}
	last := results[len(results)-1]
	fmt.Fprintln(w, "Display Panel at final epoch:")
	fmt.Fprint(w, gui.DisplayPanel(scen.Placement(), last.Answers, 72, 18))
	return nil
}

// runE3 is the System Panel's headline: per-epoch messages, frames, bytes
// and energy for MINT vs TAG vs naive vs centralized on a 64-node network
// with 16 clusters, across k.
func runE3(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(100)
	var series []stats.Series
	for _, k := range []int{1, 2, 4, 8} {
		src := trace.NewRoomActivity(7, nil, 16) // groups bound per network below
		q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: soundRange()}
		mkNet := func() (*sim.Network, error) {
			net, err := gridNetwork(64, 16, sim.DefaultOptions())
			if err != nil {
				return nil, err
			}
			src.Groups = net.Placement.Groups
			return net, nil
		}
		rows, err := snapshotSuite(mkNet, src, q, epochs)
		if err != nil {
			return err
		}
		series = append(series, stats.Series{X: float64(k), Rows: rows})
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E3a: cluster AVG, n=64, G=16, %d epochs", epochs), "k", series))
	for _, s := range series {
		// Cluster AVG with exact per-epoch answers is MINT's hard case: a
		// leaf's singleton partial of a 4-member cluster can never be
		// bounded out, so every leaf always transmits; answer churn adds
		// recovery re-polls on top. MINT lands within ~10% of TAG here
		// (winning on messages), and recovers real savings either with
		// slack (E11) or in the per-node regime (E3b below).
		checkShapeTol(w, s.Rows, 1.10)
	}
	// Savings summary for the System Panel.
	for _, s := range series {
		var mintRow, tagRow stats.RunStats
		for _, r := range s.Rows {
			switch r.Algorithm {
			case "mint":
				mintRow = r
			case "tag":
				tagRow = r
			}
		}
		fmt.Fprintf(w, "k=%.0f: %s\n", s.X, stats.Compare(mintRow, tagRow))
	}

	// Part B: the introduction's "find the K nodes with the highest
	// value" — every sensor is its own group, so a node's own aggregate is
	// complete locally and cold nodes go silent. This is the regime where
	// the System Panel shows the paper's "enormous savings".
	var nodeSeries []stats.Series
	for _, k := range []int{1, 2, 4, 8} {
		src := trace.NewRoomActivity(7, nil, 64)
		q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: soundRange()}
		mkNet := func() (*sim.Network, error) {
			net, err := gridNetwork(64, 64, sim.DefaultOptions())
			if err != nil {
				return nil, err
			}
			src.Groups = net.Placement.Groups
			return net, nil
		}
		rows, err := snapshotSuite(mkNet, src, q, epochs)
		if err != nil {
			return err
		}
		nodeSeries = append(nodeSeries, stats.Series{X: float64(k), Rows: rows})
		checkBigSavings(w, rows, 40)
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E3b: per-node top-k (G=n), n=64, %d epochs", epochs), "k", nodeSeries))
	return nil
}

// runE4 measures energy distribution and network lifetime under a finite
// per-node budget.
func runE4(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(100)
	q := topk.SnapshotQuery{K: 4, Agg: model.AggAvg, Range: soundRange()}
	src := trace.NewRoomActivity(7, nil, 16)
	mkNet := func() (*sim.Network, error) {
		net, err := gridNetwork(64, 16, sim.DefaultOptions())
		if err != nil {
			return nil, err
		}
		src.Groups = net.Placement.Groups
		return net, nil
	}
	fmt.Fprintf(w, "== E4: energy and lifetime, n=64, G=16, k=4, %d epochs ==\n", epochs)
	fmt.Fprintf(w, "%-10s %14s %14s %14s %18s\n", "algorithm", "total (mJ)", "mean/node(mJ)", "hottest (mJ)", "lifetime (epochs)")
	const budgetJ = 100.0 // a realistic radio budget slice of 2xAA
	for _, o := range []struct {
		name string
		op   topk.SnapshotOperator
	}{{"mint", mint.New()}, {"tag", tag.New()}} {
		net, err := mkNet()
		if err != nil {
			return err
		}
		if _, err := snapshotRun(o.name, o.op, net, src, q, epochs); err != nil {
			return err
		}
		l := net.Ledger
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %14.2f %18.0f\n",
			o.name, l.Total()/1000, l.Mean()/1000, l.Max()/1000, l.LifetimeEpochs(budgetJ, epochs))
	}
	return nil
}

// runE5 sweeps network size at fixed k. G scales with n (one cluster per
// two sensors) so the suppressible fraction (G−k)/G stays high — the
// regime the paper's savings claims live in; E6 covers the k→G limit.
func runE5(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(60)
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}
	var series []stats.Series
	for _, n := range []int{16, 36, 64, 100, 144} {
		g := n / 2
		src := trace.NewRoomActivity(int64(n), nil, g)
		mkNet := func() (*sim.Network, error) {
			net, err := gridNetwork(n, g, sim.DefaultOptions())
			if err != nil {
				return nil, err
			}
			src.Groups = net.Placement.Groups
			return net, nil
		}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.SnapshotOperator
		}{{"mint", mint.New()}, {"tag", tag.New()}} {
			net, err := mkNet()
			if err != nil {
				return err
			}
			rs, err := snapshotRun(o.name, o.op, net, src, q, epochs)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		series = append(series, stats.Series{X: float64(n), Rows: rows})
		checkShape(w, rows)
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E5: scaling, G=n/4, k=4, %d epochs", epochs), "n", series))
	return nil
}

// runE6 sweeps K at fixed size.
func runE6(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(60)
	var series []stats.Series
	for _, k := range []int{1, 2, 4, 8, 16} {
		src := trace.NewRoomActivity(11, nil, 16)
		q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: soundRange()}
		mkNet := func() (*sim.Network, error) {
			net, err := gridNetwork(64, 16, sim.DefaultOptions())
			if err != nil {
				return nil, err
			}
			src.Groups = net.Placement.Groups
			return net, nil
		}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.SnapshotOperator
		}{{"mint", mint.New()}, {"tag", tag.New()}} {
			net, err := mkNet()
			if err != nil {
				return err
			}
			rs, err := snapshotRun(o.name, o.op, net, src, q, epochs)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		series = append(series, stats.Series{X: float64(k), Rows: rows})
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E6: K sensitivity, n=64, G=16, %d epochs", epochs), "k", series))
	// Shape: MINT's cost grows with k and meets TAG as k approaches G.
	return nil
}
