package bench

// The durable-tier benchmarks (PR 10): what crash recovery and live
// re-sharding cost.
//
//   - store-recovery: wall time to reopen a full disk-backed store —
//     RecoveryNodes segment files at window depth, each replayed through
//     the torn-tail-truncating decoder — the startup tax a restarted
//     `kspotd -serve-shard -data-dir` pays before it can answer its first
//     retried epoch round. recovery_ms records it host-speed-adjacent but
//     directly comparable across PRs on the CI trajectory.
//
//   - reshard-downtime: a 2-shard scale-320 federation behind real
//     loopback sockets, one posted query stepping flat-out in a background
//     goroutine, migrated 2→4→2→… through the full live-re-sharding
//     cutover (re-attach, snapshot, split-merge, restore, Install).
//     resharding_downtime_epochs records how many lock-step epochs elapsed
//     per migration — every one of them answered on the OLD deployment,
//     so the number bounds the target shards' durable-window gap, not any
//     query outage.

import (
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"
	"time"

	"kspot/internal/config"
	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topk/fed"
	"kspot/internal/wire"
)

// RecoveryNodes and RecoveryEpochs size the store-recovery benchmark: a
// scale-320 shard's worth of segment files, every window full.
const (
	RecoveryNodes  = 320
	RecoveryEpochs = storage.DefaultStoreWindow
)

// ReshardScaleSize and ReshardMigrations size the reshard-downtime
// benchmark: the scale-320 field (16 clusters — splits 2 and 4 ways)
// migrated back and forth this many times.
const (
	ReshardScaleSize  = 320
	ReshardMigrations = 4
)

// RunStoreRecoveryBench is the shared measurement body of the recovery
// benchmark: populate a disk-backed store once (off the timer), then
// measure b.N full recoveries — OpenStore replaying every segment's clean
// prefix and resuming the epoch cursor. Closing the recovered store is off
// the timer; only the open-and-replay path is measured.
func RunStoreRecoveryBench(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.OpenStore(dir, storage.DefaultStoreWindow)
	if err != nil {
		b.Fatal(err)
	}
	readings := make(map[model.NodeID]model.Reading, RecoveryNodes)
	for e := 0; e < RecoveryEpochs; e++ {
		for n := 1; n <= RecoveryNodes; n++ {
			readings[model.NodeID(n)] = model.Reading{
				Node:  model.NodeID(n),
				Epoch: model.Epoch(e),
				Value: model.Value(float64(n%97) + float64(e)*0.25),
			}
		}
		st.RecordReadings(model.Epoch(e), readings)
	}
	if err := st.Err(); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := storage.OpenStore(dir, storage.DefaultStoreWindow)
		if err != nil {
			b.Fatal(err)
		}
		if e, ok := rec.Cursor(); !ok || e != RecoveryEpochs-1 {
			b.Fatalf("recovered cursor %v/%v, want %d", e, ok, RecoveryEpochs-1)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// reshardFleet is one side of a migration: a wire server per shard on
// loopback, its dialed client, and the remote deployment handles the
// coordinator installs.
type reshardFleet struct {
	scens   []*config.Scenario
	servers []*wire.Server
	clients []*wire.Client
	deps    []*engine.RemoteDeployment
}

func startReshardFleet(scen *config.Scenario) (*reshardFleet, error) {
	shardScens, err := scen.ShardScenarios()
	if err != nil {
		return nil, err
	}
	f := &reshardFleet{scens: shardScens}
	for i, sub := range shardScens {
		srv, err := wire.NewServer(wire.ServerConfig{Scenario: scen, Shard: i})
		if err != nil {
			f.close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			f.close()
			return nil, err
		}
		go srv.Serve(ln)
		f.servers = append(f.servers, srv)
		roster := make([]model.NodeID, 0, len(sub.Nodes))
		for _, n := range sub.Nodes {
			roster = append(roster, model.NodeID(n.ID))
		}
		slices.Sort(roster)
		cl, err := wire.Dial(wire.ClientConfig{
			Addr:     ln.Addr().String(),
			Scenario: scen.Name,
			Shard:    i,
			Shards:   len(shardScens),
			Nodes:    len(sub.Nodes),
			Roster:   roster,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		f.clients = append(f.clients, cl)
		f.deps = append(f.deps, engine.NewRemoteDeployment(scen.ShardName(i), cl))
	}
	return f, nil
}

func (f *reshardFleet) close() {
	for _, cl := range f.clients {
		cl.Close()
	}
	for _, srv := range f.servers {
		srv.Close()
	}
}

// MeasureReshardDowntime runs the live-re-sharding cutover end to end the
// given number of times — alternating 2→4 and 4→2 on the scale-320 field,
// with one scheduled query stepping continuously in the background — and
// returns the mean wall nanoseconds per migration and the mean lock-step
// epochs that elapsed while each migration was in flight.
func MeasureReshardDowntime(migrations int) (nsPerMigration, downtimeEpochs float64, err error) {
	scen2, err := config.ScaleScenarioShards(ReshardScaleSize, 2)
	if err != nil {
		return 0, 0, err
	}
	scen4, err := config.ScaleScenarioShards(ReshardScaleSize, 4)
	if err != nil {
		return 0, 0, err
	}
	cur, err := startReshardFleet(scen2)
	if err != nil {
		return 0, 0, err
	}
	defer func() { cur.close() }()

	const (
		rqid = 1
		algo = "mint"
		sql  = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid"
	)
	for _, cl := range cur.clients {
		if err := cl.Attach(rqid, algo, sql); err != nil {
			return 0, 0, err
		}
	}
	q := topk.SnapshotQuery{K: 3, Agg: model.AggAvg, Range: soundRange()}
	var fstats fed.Stats
	merger, err := fed.New(q, fed.Config{}, &fstats)
	if err != nil {
		return 0, 0, err
	}
	coord := engine.NewRemoteCoordinator(cur.deps...)
	rq := coord.Schedule("g", rqid, merger.Merge, q.K)

	// The background load: one query stepping flat-out — every epoch the
	// clock runs during a migration ran on the old deployment.
	stop := make(chan struct{})
	var stepErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			out, err := coord.Step(rq)
			if err != nil {
				stepErr = err
				return
			}
			if out.Err != nil {
				stepErr = out.Err
				return
			}
		}
	}()
	stopStepper := func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}
	defer stopStepper()

	var totalNs, totalDown int64
	for m := 0; m < migrations; m++ {
		target := scen4
		if m%2 == 1 {
			target = scen2
		}
		next, err := startReshardFleet(target)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		before := coord.EpochNow()
		for _, cl := range next.clients {
			if err := cl.Attach(rqid, algo, sql); err != nil {
				next.close()
				return 0, 0, err
			}
		}
		states := make([]storage.ShardState, len(cur.clients))
		for i, cl := range cur.clients {
			img, err := cl.Snapshot()
			if err != nil {
				next.close()
				return 0, 0, fmt.Errorf("bench: reshard snapshot shard %d: %w", i, err)
			}
			if states[i], err = storage.DecodeShardState(img); err != nil {
				next.close()
				return 0, 0, err
			}
		}
		for ti, ts := range next.scens {
			keep := make(map[model.NodeID]bool, len(ts.Nodes))
			for _, n := range ts.Nodes {
				keep[model.NodeID(n.ID)] = true
			}
			merged := storage.MergeShardStates(states, keep)
			if err := next.clients[ti].Restore(storage.AppendShardState(nil, merged)); err != nil {
				next.close()
				return 0, 0, fmt.Errorf("bench: reshard restore shard %d: %w", ti, err)
			}
		}
		if err := coord.Install(next.deps); err != nil {
			next.close()
			return 0, 0, err
		}
		totalDown += int64(coord.EpochNow() - before)
		totalNs += time.Since(start).Nanoseconds()
		old := cur
		cur = next
		// In-flight rounds finish on the old connections before they close.
		coord.Serialized(func() error {
			for _, cl := range old.clients {
				cl.Close()
			}
			return nil
		})
		for _, srv := range old.servers {
			srv.Close()
		}
	}
	stopStepper()
	if stepErr != nil {
		return 0, 0, fmt.Errorf("bench: background stepper during migration: %w", stepErr)
	}
	n := float64(migrations)
	return float64(totalNs) / n, float64(totalDown) / n, nil
}

// microStoreRecovery measures the full-store recovery path; recovery_ms is
// NsPerOp in wall milliseconds.
func microStoreRecovery() (MicroResult, error) {
	r := testing.Benchmark(RunStoreRecoveryBench)
	res, err := micro(r, 0, 0)
	if err != nil {
		return res, err
	}
	res.RecoveryMs = res.NsPerOp / 1e6
	return res, nil
}

// microReshardDowntime measures the live-re-sharding cutover. The
// measurement is one-shot (each migration needs a fresh target fleet), so
// the MicroResult is built directly rather than via testing.Benchmark.
func microReshardDowntime() (MicroResult, error) {
	ns, down, err := MeasureReshardDowntime(ReshardMigrations)
	if err != nil {
		return MicroResult{}, err
	}
	return MicroResult{
		Iterations:               ReshardMigrations,
		NsPerOp:                  ns,
		ReshardingDowntimeEpochs: &down,
	}, nil
}
