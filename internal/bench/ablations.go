package bench

import (
	"fmt"
	"io"

	"kspot/internal/model"
	"kspot/internal/query"
	"kspot/internal/sim"
	"kspot/internal/stats"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topk/naive"
	"kspot/internal/topk/tag"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func init() {
	register(Experiment{ID: "e9", Title: "Recall of naive greedy pruning", Run: runE9})
	register(Experiment{ID: "e10", Title: "Query parse/plan routing and latency", Run: runE10})
	register(Experiment{ID: "e11", Title: "Ablation: γ recovery on/off", Run: runE11})
	register(Experiment{ID: "e12", Title: "Ablation: radio payload size / fragmentation", Run: runE12})
	register(Experiment{ID: "e13", Title: "Lossy links: retransmissions and staleness", Run: runE13})
}

// runE9 quantifies how often, and how badly, the naive strategy of §III-A
// errs across seeded random deployments.
func runE9(w io.Writer, cfg RunConfig) error {
	runs := cfg.scaled(200)
	epochsPer := 10
	var sumRecall float64
	wrongRuns := 0
	perfect := 0
	for seed := int64(1); seed <= int64(runs); seed++ {
		p := topo.Rooms(6, 3, 12, seed)
		net, err := sim.New(p, 30, sim.DefaultOptions())
		if err != nil {
			continue // disconnected random layout: skip, like a failed deployment
		}
		src := trace.NewRoomActivity(seed*31, p.Groups, 6)
		r := &topk.Runner{Net: net, Source: src, Op: naive.New(), Query: topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}}
		results, err := r.Run(epochsPer)
		if err != nil {
			return err
		}
		s := topk.Summarize(results)
		sumRecall += s.MeanRecall
		if s.CorrectPct < 100 {
			wrongRuns++
		} else {
			perfect++
		}
	}
	total := wrongRuns + perfect
	fmt.Fprintf(w, "== E9: naive greedy recall, %d seeded 18-node deployments, k=2 ==\n", total)
	fmt.Fprintf(w, "runs with at least one wrong epoch: %d / %d (%.1f%%)\n", wrongRuns, total, 100*float64(wrongRuns)/float64(maxInt(total, 1)))
	fmt.Fprintf(w, "mean recall: %.4f (exact algorithms: 1.0000)\n", sumRecall/float64(maxInt(total, 1)))
	return nil
}

// runE10 exercises the router of §II on a query workload and reports
// dispatch decisions.
func runE10(w io.Writer, cfg RunConfig) error {
	schema := query.DefaultSchema()
	queries := []string{
		"SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
		"SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid",
		"SELECT TOP 5 timeinstant, AVG(temp) FROM sensors WITH HISTORY 256",
		"SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 32",
		"SELECT sound, temp FROM sensors EPOCH DURATION 30 s",
		"SELECT roomid, MIN(temp) FROM sensors GROUP BY roomid",
	}
	fmt.Fprintln(w, "== E10: query routing (§II local query parser) ==")
	for _, q := range queries {
		plan, err := query.PlanText(q, schema)
		if err != nil {
			return fmt.Errorf("planning %q: %w", q, err)
		}
		fmt.Fprintf(w, "%-22s <- %s\n", plan.Kind, q)
	}
	return nil
}

// runE11 measures what the recovery loop buys: correctness under answer
// churn, and its traffic cost.
func runE11(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(100)
	var rows []stats.RunStats
	for _, cfg := range []struct {
		name string
		op   topk.SnapshotOperator
	}{
		{"mint", mint.New()},
		{"mint-norecovery", mint.NewWithConfig(mint.Config{NoRecovery: true})},
		{"mint-slack5", mint.NewWithConfig(mint.Config{Slack: 5})},
	} {
		src := trace.NewRoomActivity(3, nil, 8)
		src.Period = 5 // heavy churn
		net, err := gridNetwork(64, 8, sim.DefaultOptions())
		if err != nil {
			return err
		}
		src.Groups = net.Placement.Groups
		rs, err := snapshotRun(cfg.name, cfg.op, net, src, topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}, epochs)
		if err != nil {
			return err
		}
		rows = append(rows, rs)
	}
	fmt.Fprint(w, stats.Table(fmt.Sprintf("E11: γ recovery ablation, churn period 5, %d epochs", epochs), rows))
	if rows[0].Correct < 100 {
		fmt.Fprintln(w, "!! SHAPE VIOLATION: full MINT not exact under churn")
	}
	if rows[1].Correct >= 100 {
		fmt.Fprintln(w, "!! SHAPE VIOLATION: no-recovery ablation shows no staleness (vacuous)")
	}
	return nil
}

// runE12 sweeps the radio payload size: small TinyOS frames fragment TAG's
// wide views while MINT's pruned views fit; larger payloads close the
// frame-count gap but not the byte gap.
func runE12(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(60)
	var series []stats.Series
	for _, payload := range []int{16, 29, 64, 128} {
		opts := sim.DefaultOptions()
		opts.Radio.Payload = payload
		src := trace.NewRoomActivity(7, nil, 16)
		q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.SnapshotOperator
		}{{"mint", mint.New()}, {"tag", tag.New()}} {
			net, err := gridNetwork(64, 16, opts)
			if err != nil {
				return err
			}
			src.Groups = net.Placement.Groups
			rs, err := snapshotRun(o.name, o.op, net, src, q, epochs)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		series = append(series, stats.Series{X: float64(payload), Rows: rows})
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E12: payload size vs frames, n=64, G=16, k=2, %d epochs", epochs), "payload", series))
	return nil
}

// runE13 injects frame loss and reports retransmission overhead and result
// staleness (exactness is only guaranteed on lossless links; the question
// is how gracefully accuracy degrades).
func runE13(w io.Writer, cfg RunConfig) error {
	epochs := cfg.scaled(80)
	var series []stats.Series
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		opts := sim.DefaultOptions()
		opts.Radio.LossRate = loss
		opts.Radio.MaxRetries = 3
		opts.Radio.Seed = 99
		src := trace.NewRoomActivity(7, nil, 8)
		q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: soundRange()}
		var rows []stats.RunStats
		for _, o := range []struct {
			name string
			op   topk.SnapshotOperator
		}{{"mint", mint.New()}, {"tag", tag.New()}} {
			net, err := gridNetwork(36, 8, opts)
			if err != nil {
				return err
			}
			src.Groups = net.Placement.Groups
			rs, err := snapshotRun(o.name, o.op, net, src, q, epochs)
			if err != nil {
				return err
			}
			rows = append(rows, rs)
		}
		series = append(series, stats.Series{X: loss * 100, Rows: rows})
	}
	fmt.Fprint(w, stats.SweepTable(fmt.Sprintf("E13: loss sweep (x = loss %%), n=36, G=8, k=2, %d epochs", epochs), "loss%", series))
	fmt.Fprintln(w, "note: recall stays high under loss; exactness holds only at 0% (documented limitation)")
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
