package bench

import (
	"testing"
	"time"
)

// TestWireEpochRTTSpeedup is the PR-9 acceptance bar in test form: at a
// link-dominated RTT the batched epoch-round protocol must cut epoch
// latency at least 3× versus the serialized per-call protocol (ideal is
// 1+G = 5×), with rounds per epoch dropping from 1+G to exactly 1.
func TestWireEpochRTTSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("injects real link delay in -short mode")
	}
	const (
		linkDelay = 2 * time.Millisecond
		groups    = WireRTTGroups
		epochs    = 6
	)
	legs, err := MeasureWireEpochRTT(linkDelay, groups, epochs)
	if err != nil {
		t.Fatal(err)
	}
	byLeg := map[WireLeg]WireRTTLegResult{}
	for _, l := range legs {
		t.Logf("%-20s %8.2f ms/epoch  %5.2f rounds/epoch  %7.0f bytes/epoch",
			l.Leg, l.NsPerEpoch/1e6, l.RoundsPerEpoch, l.BytesPerEpoch)
		byLeg[l.Leg] = l
	}
	ser, bat := byLeg[WirePerCallSerialized], byLeg[WireBatched]
	if ser.RoundsPerEpoch != float64(1+groups) {
		t.Errorf("serialized rounds/epoch = %v, want %d", ser.RoundsPerEpoch, 1+groups)
	}
	if bat.RoundsPerEpoch != 1 {
		t.Errorf("batched rounds/epoch = %v, want 1", bat.RoundsPerEpoch)
	}
	if bat.BytesPerEpoch <= 0 || ser.BytesPerEpoch <= 0 {
		t.Errorf("bytes/epoch not recorded: serialized %v, batched %v", ser.BytesPerEpoch, bat.BytesPerEpoch)
	}
	if speedup := ser.NsPerEpoch / bat.NsPerEpoch; speedup < 3 {
		t.Errorf("batched epoch speedup %.2fx, want >= 3x (serialized %.2fms, batched %.2fms)",
			speedup, ser.NsPerEpoch/1e6, bat.NsPerEpoch/1e6)
	}
}
