package gui

import (
	"strings"
	"testing"

	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/trace"
)

func TestCanvasBasics(t *testing.T) {
	c := NewCanvas(10, 3)
	c.Set(0, 0, 'x')
	c.Set(-1, 0, 'y') // out of bounds: ignored
	c.Set(10, 3, 'y')
	c.Text(2, 1, "hello")
	out := c.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "hello") {
		t.Errorf("canvas:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // border + 3 rows + border
		t.Errorf("canvas has %d lines", len(lines))
	}
}

func TestCanvasTextClipped(t *testing.T) {
	c := NewCanvas(4, 1)
	c.Text(2, 0, "abcdef")
	if out := c.String(); !strings.Contains(out, "ab") || strings.Contains(out, "abc") {
		t.Errorf("clipping failed:\n%s", out)
	}
}

func TestCanvasLine(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Line(0, 0, 9, 9)
	dots := strings.Count(c.String(), ".")
	if dots < 8 {
		t.Errorf("diagonal line has %d dots", dots)
	}
}

func TestDisplayPanelFigure3(t *testing.T) {
	p := trace.Figure3Placement()
	answers := []model.Answer{{Group: 1, Score: 82.5}, {Group: 4, Score: 71}, {Group: 2, Score: 60.25}}
	out := DisplayPanel(p, answers, 72, 20)
	for _, want := range []string{"SINK", "s1", "s14", "(1)", "(2)", "(3)", "Auditorium", "KSpot bullet", "82.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("display panel missing %q:\n%s", want, out)
		}
	}
	// Unranked clusters must not carry bullets.
	if strings.Contains(out, "(4)") {
		t.Error("bullet shown for unranked cluster")
	}
}

func TestDisplayPanelFigure1(t *testing.T) {
	p := trace.Figure1Placement()
	out := DisplayPanel(p, trace.Figure1Answers()[:1], 64, 16)
	if !strings.Contains(out, "Room C") {
		t.Errorf("missing room names:\n%s", out)
	}
}

func TestRankingStrip(t *testing.T) {
	p := trace.Figure3Placement()
	out := RankingStrip(p, []model.Answer{{Group: 1, Score: 80}, {Group: 6, Score: 50}})
	if !strings.Contains(out, "1. Auditorium (80.00)") || !strings.Contains(out, "2. Lobby (50.00)") {
		t.Errorf("strip = %q", out)
	}
	if got := RankingStrip(p, nil); got != "no answers yet" {
		t.Errorf("empty strip = %q", got)
	}
}

func TestSystemPanel(t *testing.T) {
	run := stats.RunStats{Algorithm: "mint", Epochs: 100, Messages: 500, TxBytes: 12345, EnergyUJ: 67890}
	base := stats.RunStats{Algorithm: "tag", Epochs: 100, Messages: 2000, TxBytes: 99999, EnergyUJ: 400000}
	out := SystemPanel(run, &base)
	for _, want := range []string{"SYSTEM PANEL", "mint", "byte savings", "energy savings", "tag:"} {
		if !strings.Contains(out, want) {
			t.Errorf("system panel missing %q:\n%s", want, out)
		}
	}
	// Without a baseline the savings section disappears.
	solo := SystemPanel(run, nil)
	if strings.Contains(solo, "savings") {
		t.Error("savings rendered without a baseline")
	}
}

func TestPanelBoxAligned(t *testing.T) {
	run := stats.RunStats{Algorithm: "mint", Epochs: 1}
	out := SystemPanel(run, nil)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width {
			t.Errorf("line %d width %d != %d: %q", i, len(l), width, l)
		}
	}
}
