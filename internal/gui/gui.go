// Package gui is the text-mode substitute for KSpot's Swing GUI. It renders
// the Display Panel — the deployment map with sensors, cluster links and
// the red "KSpot Bullets" that mark the K highest-ranked clusters — and the
// System Panel with live traffic and energy statistics, both as plain text
// suitable for a terminal or the kspotd HTTP dashboard.
package gui

import (
	"fmt"
	"strings"

	"kspot/internal/model"
	"kspot/internal/stats"
	"kspot/internal/topo"
)

// Canvas is a fixed-size character grid.
type Canvas struct {
	w, h  int
	cells [][]rune
}

// NewCanvas returns a blank canvas.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{w: w, h: h, cells: make([][]rune, h)}
	for y := range c.cells {
		row := make([]rune, w)
		for x := range row {
			row[x] = ' '
		}
		c.cells[y] = row
	}
	return c
}

// Set places a rune, ignoring out-of-bounds coordinates.
func (c *Canvas) Set(x, y int, r rune) {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return
	}
	c.cells[y][x] = r
}

// Text writes a string starting at (x,y), clipped to the canvas.
func (c *Canvas) Text(x, y int, s string) {
	for i, r := range s {
		c.Set(x+i, y, r)
	}
}

// Line draws a straight segment with Bresenham's algorithm using '.' marks,
// the Display Panel's "black line linking nodes of the same cluster".
func (c *Canvas) Line(x0, y0, x1, y1 int) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if c.cells[clamp(y0, 0, c.h-1)][clamp(x0, 0, c.w-1)] == ' ' {
			c.Set(x0, y0, '.')
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	for _, row := range c.cells {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	return b.String()
}

// DisplayPanel renders the deployment: sensors as 's<id>', the sink as
// 'SINK', cluster links, and a KSpot bullet '(r)' beside each of the K
// highest-ranked clusters. Answers are ranked; answer[0] gets bullet (1).
func DisplayPanel(p *topo.Placement, answers []model.Answer, w, h int) string {
	c := NewCanvas(w, h)
	minX, minY, maxX, maxY := bounds(p)
	scaleX := float64(w-8) / maxf(maxX-minX, 1)
	scaleY := float64(h-3) / maxf(maxY-minY, 1)
	px := func(pt topo.Point) (int, int) {
		return 2 + int((pt.X-minX)*scaleX), 1 + int((pt.Y-minY)*scaleY)
	}

	// Cluster links: chain each cluster's members in id order.
	members := p.GroupMembers()
	groups := p.GroupIDs()
	for _, g := range groups {
		ms := members[g]
		for i := 1; i < len(ms); i++ {
			x0, y0 := px(p.Positions[ms[i-1]])
			x1, y1 := px(p.Positions[ms[i]])
			c.Line(x0, y0, x1, y1)
		}
	}

	// Sensors and sink.
	for _, id := range p.SensorNodes() {
		x, y := px(p.Positions[id])
		c.Text(x, y, fmt.Sprintf("s%d", id))
	}
	sx, sy := px(p.Positions[model.Sink])
	c.Text(sx, sy, "SINK")

	// KSpot bullets beside the highest-ranked cluster's first member.
	rank := map[model.GroupID]int{}
	for i, a := range answers {
		rank[a.Group] = i + 1
	}
	for _, g := range groups {
		r, ok := rank[g]
		if !ok || len(members[g]) == 0 {
			continue
		}
		x, y := px(p.Positions[members[g][0]])
		c.Text(x-4, y, fmt.Sprintf("(%d)", r))
	}

	var b strings.Builder
	b.WriteString(c.String())
	b.WriteString(legend(p, answers))
	return b.String()
}

// legend lists clusters with names, sizes and current rank/score.
func legend(p *topo.Placement, answers []model.Answer) string {
	rank := map[model.GroupID]int{}
	score := map[model.GroupID]model.Value{}
	for i, a := range answers {
		rank[a.Group] = i + 1
		score[a.Group] = a.Score
	}
	sizes := p.GroupSize()
	var b strings.Builder
	b.WriteString("clusters:\n")
	for _, g := range p.GroupIDs() {
		name := p.Names[g]
		if name == "" {
			name = fmt.Sprintf("cluster %d", g)
		}
		if r, ok := rank[g]; ok {
			fmt.Fprintf(&b, "  (%d) %-20s %2d nodes  score %.2f  << KSpot bullet\n", r, name, sizes[g], score[g])
		} else {
			fmt.Fprintf(&b, "      %-20s %2d nodes\n", name, sizes[g])
		}
	}
	return b.String()
}

// RankingStrip renders a one-line live ranking ("1. Room C (75.00)  2. ...")
// for dashboards.
func RankingStrip(p *topo.Placement, answers []model.Answer) string {
	parts := make([]string, 0, len(answers))
	for i, a := range answers {
		name := p.Names[a.Group]
		if name == "" {
			name = fmt.Sprintf("cluster %d", a.Group)
		}
		parts = append(parts, fmt.Sprintf("%d. %s (%.2f)", i+1, name, a.Score))
	}
	if len(parts) == 0 {
		return "no answers yet"
	}
	return strings.Join(parts, "  ")
}

// SystemPanel renders the savings box the paper projects during the demo.
func SystemPanel(run stats.RunStats, baseline *stats.RunStats) string {
	var b strings.Builder
	b.WriteString("+--------------- SYSTEM PANEL ---------------+\n")
	fmt.Fprintf(&b, "| algorithm : %-30s |\n", run.Algorithm)
	fmt.Fprintf(&b, "| epochs    : %-30d |\n", run.Epochs)
	fmt.Fprintf(&b, "| messages  : %-30d |\n", run.Messages)
	fmt.Fprintf(&b, "| frames    : %-30d |\n", run.Frames)
	fmt.Fprintf(&b, "| tx bytes  : %-30d |\n", run.TxBytes)
	fmt.Fprintf(&b, "| energy    : %-27.2f mJ |\n", run.EnergyUJ/1000)
	if baseline != nil {
		s := stats.Compare(run, *baseline)
		fmt.Fprintf(&b, "| vs %-41s |\n", baseline.Algorithm+":")
		fmt.Fprintf(&b, "|   message savings : %-21.1f%% |\n", s.Messages)
		fmt.Fprintf(&b, "|   frame savings   : %-21.1f%% |\n", s.Frames)
		fmt.Fprintf(&b, "|   byte savings    : %-21.1f%% |\n", s.Bytes)
		fmt.Fprintf(&b, "|   energy savings  : %-21.1f%% |\n", s.Energy)
	}
	b.WriteString("+" + strings.Repeat("-", 44) + "+\n")
	return b.String()
}

func bounds(p *topo.Placement) (minX, minY, maxX, maxY float64) {
	first := true
	for _, pt := range p.Positions {
		if first {
			minX, maxX, minY, maxY = pt.X, pt.X, pt.Y, pt.Y
			first = false
			continue
		}
		if pt.X < minX {
			minX = pt.X
		}
		if pt.X > maxX {
			maxX = pt.X
		}
		if pt.Y < minY {
			minY = pt.Y
		}
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	return
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
