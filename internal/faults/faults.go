// Package faults is the unreliable-world layer: it degrades any
// engine.Transport with seeded link loss, message duplication and delay,
// and scheduled node churn — the conditions the paper's MICA2 deployments
// actually ran under, which sim.DefaultOptions' lossless world never
// exercises.
//
// The layer has two halves, matching where each fault physically lives:
//
//   - Frame faults (loss, delay, duplication) are injected into the shared
//     radio link (radio.Config.Fault), so retransmission, framing and
//     energy accounting all apply unchanged. Loss models: Bernoulli
//     per-frame, distance-weighted, and Gilbert-Elliott bursts.
//   - Node churn (scheduled death and revival) is a Transport decorator,
//     the Injector, which watches the epoch stream and flips nodes down/up
//     through the same Alive pathway energy exhaustion uses.
//
// Determinism contract: every fault decision is a pure function of the
// fault seed and the message's identity (link, kind, epoch, fragment,
// attempt, payload) — never of transmission order. The deterministic
// simulator and the concurrent live substrate therefore replay the exact
// same fault pattern under the same seed, which is what the conformance
// suite's substrate-equivalence tests pin (see internal/topk/topktest).
//
// Decorator ordering: Wrap installs the frame model into the innermost
// link and returns the churn Injector as the outermost transport. Stack
// further decorators outside the Injector; nothing may sit between the
// Injector and the substrate, or churn would miss epoch observations.
package faults

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/topo"
)

// DistanceSpec weights per-frame loss by link length:
// p(d) = min(Max, PAtRef * (d/Ref)^Exp). Longer hops fade more, the
// classic log-distance picture collapsed to a power law.
type DistanceSpec struct {
	PAtRef float64 `json:"p_at_ref"`      // loss probability at distance Ref
	Ref    float64 `json:"ref"`           // reference distance, same units as the placement
	Exp    float64 `json:"exp,omitempty"` // path-loss exponent, default 2
	Max    float64 `json:"max,omitempty"` // probability ceiling, default 0.95
}

// BurstSpec is a Gilbert-Elliott channel: each link walks a two-state
// Markov chain (good/bad) advanced once per epoch, with a per-frame loss
// probability for each state. Bad states model the multi-epoch fades real
// deployments see.
type BurstSpec struct {
	PGoodBad float64 `json:"p_good_bad"`          // per-epoch good→bad transition
	PBadGood float64 `json:"p_bad_good"`          // per-epoch bad→good transition
	LossGood float64 `json:"loss_good,omitempty"` // per-frame loss in the good state
	LossBad  float64 `json:"loss_bad"`            // per-frame loss in the bad state
}

// ChurnEvent schedules one node's administrative death or revival. The
// event fires at the first transmission of its epoch: the node's epoch-e
// reading may still be sensed, but nothing of epoch e (or later) is
// transmitted or received. Revival rides the same pathway; a node whose
// energy budget is exhausted stays dead regardless.
type ChurnEvent struct {
	Node  model.NodeID `json:"node"`
	Epoch model.Epoch  `json:"epoch"`
	Down  bool         `json:"down"`
}

// Config declares a deployment's fault environment. The zero Config is a
// perfect world. At most one of Loss/Distance/Burst may be set.
type Config struct {
	// Seed drives every fault decision. Identical seeds replay identical
	// fault patterns on both substrates.
	Seed int64 `json:"seed"`
	// Loss is a Bernoulli per-frame loss probability in [0,1).
	Loss float64 `json:"loss,omitempty"`
	// Distance, when non-nil, weights loss by link length.
	Distance *DistanceSpec `json:"distance,omitempty"`
	// Burst, when non-nil, runs Gilbert-Elliott loss bursts per link.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Duplicate is the probability a delivered frame is spuriously
	// retransmitted (doubling its air and receive cost), in [0,1).
	Duplicate float64 `json:"duplicate,omitempty"`
	// Delay is the probability a frame arrives outside its receive window
	// (charged like a reception, retried like a loss), in [0,1).
	Delay float64 `json:"delay,omitempty"`
	// Churn schedules node deaths and revivals.
	Churn []ChurnEvent `json:"churn,omitempty"`
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.Loss > 0 || c.Distance != nil || c.Burst != nil ||
		c.Duplicate > 0 || c.Delay > 0 || len(c.Churn) > 0
}

// Validate rejects malformed configurations.
func (c *Config) Validate() error {
	prob := func(name string, p float64) error {
		if p < 0 || p >= 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1)", name, p)
		}
		return nil
	}
	if err := prob("loss", c.Loss); err != nil {
		return err
	}
	if err := prob("duplicate", c.Duplicate); err != nil {
		return err
	}
	if err := prob("delay", c.Delay); err != nil {
		return err
	}
	models := 0
	if c.Loss > 0 {
		models++
	}
	if c.Distance != nil {
		models++
		if err := prob("distance p_at_ref", c.Distance.PAtRef); err != nil {
			return err
		}
		if c.Distance.Ref <= 0 {
			return fmt.Errorf("faults: distance ref must be positive, got %v", c.Distance.Ref)
		}
	}
	if c.Burst != nil {
		models++
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"burst p_good_bad", c.Burst.PGoodBad},
			{"burst p_bad_good", c.Burst.PBadGood},
			{"burst loss_good", c.Burst.LossGood},
			{"burst loss_bad", c.Burst.LossBad},
		} {
			if err := prob(p.name, p.v); err != nil {
				return err
			}
		}
	}
	if models > 1 {
		return fmt.Errorf("faults: at most one loss model (loss, distance, burst) may be set")
	}
	for _, ev := range c.Churn {
		if ev.Node == model.Sink {
			return fmt.Errorf("faults: the sink (node %d) cannot churn", model.Sink)
		}
	}
	return nil
}

// faultSetter is satisfied by both substrates (*sim.Network natively,
// *engine.Live by locked delegation): it reaches the shared radio link.
type faultSetter interface {
	SetFault(radio.FaultModel)
}

// vitality is satisfied by both substrates: the administrative kill/revive
// switch churn flips.
type vitality interface {
	SetNodeDown(id model.NodeID, down bool)
}

// Wrap degrades a transport with the configured faults: the frame model is
// installed into the substrate's link layer and the returned Injector
// decorates the transport with churn. Wrap an engine substrate directly —
// *sim.Network or *engine.Live — before any traffic flows. The Injector is
// always returned (pass-through when the config is empty) so callers hold
// a single transport either way.
func Wrap(t engine.Transport, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fm := cfg.frameModel(t.Topology()); fm != nil {
		fs, ok := t.(faultSetter)
		if !ok {
			return nil, fmt.Errorf("faults: transport %T cannot host a link fault model", t)
		}
		fs.SetFault(fm)
	}
	inj := &Injector{inner: t}
	if len(cfg.Churn) > 0 {
		if _, ok := t.(vitality); !ok {
			return nil, fmt.Errorf("faults: transport %T cannot host node churn", t)
		}
		inj.events = append(inj.events, cfg.Churn...)
		sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].Epoch < inj.events[j].Epoch })
	}
	return inj, nil
}

// frameModel assembles the composite radio.FaultModel, or nil when no
// frame fault is configured. The placement feeds the distance model.
func (c *Config) frameModel(p *topo.Placement) radio.FaultModel {
	if c.Loss <= 0 && c.Distance == nil && c.Burst == nil && c.Duplicate <= 0 && c.Delay <= 0 {
		return nil
	}
	m := &frameModel{seed: c.Seed, dup: c.Duplicate, delay: c.Delay}
	switch {
	case c.Loss > 0:
		m.lossAt = func(radio.Message) float64 { return c.Loss }
	case c.Distance != nil:
		m.lossAt = distanceLoss(*c.Distance, p)
	case c.Burst != nil:
		m.lossAt = burstLoss(*c.Burst, c.Seed)
	}
	return m
}

// frameModel implements radio.FaultModel: loss first (per the selected
// model), then delay, then duplication, each from an independent salted
// draw on the message identity. The payload is hashed on every Frame call:
// an earlier revision memoized the digest under a (header, length, backing
// pointer) key, but a multi-query epoch runs several sweeps over the same
// links with pooled payload buffers, so a recycled buffer can carry
// different bytes under an identical key — a false hit that silently
// violates the determinism contract. The payloads are tens of bytes;
// rehashing per frame attempt is noise next to that hazard.
type frameModel struct {
	seed   int64
	lossAt func(msg radio.Message) float64 // nil = lossless
	dup    float64
	delay  float64
}

// base returns the per-message digest.
func (m *frameModel) base(msg radio.Message) uint64 {
	return msgDigest(m.seed, msg)
}

// Draw salts, one per fault dimension so the streams are independent.
const (
	saltLoss  = 0x6c6f7373 // "loss"
	saltDelay = 0x64656c61 // "dela"
	saltDup   = 0x64757000 // "dup"
	saltBurst = 0x62727374 // "brst"
)

// Frame implements radio.FaultModel. The message's identity (payload
// included) is hashed once per message; each frame attempt and each fault
// dimension draws its own salted variate from that digest.
func (m *frameModel) Frame(msg radio.Message, frag, attempt int) radio.FrameFate {
	h := frameDigest(m.base(msg), frag, attempt)
	if m.lossAt != nil {
		if p := m.lossAt(msg); p > 0 && unit(h, saltLoss) < p {
			return radio.FrameLost
		}
	}
	if m.delay > 0 && unit(h, saltDelay) < m.delay {
		return radio.FrameDelayed
	}
	if m.dup > 0 && unit(h, saltDup) < m.dup {
		return radio.FrameDuplicated
	}
	return radio.FrameOK
}

// distanceLoss binds a DistanceSpec to the deployment's geometry.
func distanceLoss(spec DistanceSpec, p *topo.Placement) func(radio.Message) float64 {
	if spec.Exp == 0 {
		spec.Exp = 2
	}
	if spec.Max == 0 {
		spec.Max = 0.95
	}
	return func(msg radio.Message) float64 {
		a, okA := p.Positions[msg.From]
		b, okB := p.Positions[msg.To]
		if !okA || !okB {
			return 0
		}
		loss := spec.PAtRef * math.Pow(a.Dist(b)/spec.Ref, spec.Exp)
		if loss > spec.Max {
			loss = spec.Max
		}
		return loss
	}
}

// burstLoss binds a BurstSpec: each undirected link walks its own
// Gilbert-Elliott chain, advanced once per observed epoch. The chain state
// at epoch e is a pure function of (seed, link, e) — it is computed by
// replaying the chain from epoch 0, memoized per link so the monotone
// epoch streams of real runs advance in O(1).
func burstLoss(spec BurstSpec, seed int64) func(radio.Message) float64 {
	type chain struct {
		epoch model.Epoch
		bad   bool
	}
	type linkKey struct{ lo, hi model.NodeID }
	var mu sync.Mutex
	chains := make(map[linkKey]*chain)
	return func(msg radio.Message) float64 {
		key := linkKey{msg.From, msg.To}
		if key.lo > key.hi {
			key.lo, key.hi = key.hi, key.lo
		}
		mu.Lock()
		c := chains[key]
		if c == nil || msg.Epoch < c.epoch {
			c = &chain{} // good at epoch 0; regression replays from scratch
			chains[key] = c
		}
		for c.epoch < msg.Epoch {
			p := spec.PGoodBad
			if c.bad {
				p = spec.PBadGood
			}
			if stepDraw(seed, key.lo, key.hi, c.epoch) < p {
				c.bad = !c.bad
			}
			c.epoch++
		}
		bad := c.bad
		mu.Unlock()
		if bad {
			return spec.LossBad
		}
		return spec.LossGood
	}
}
