package faults

import (
	"sync"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
)

// Injector is the churn decorator: a Transport that forwards every
// primitive to the wrapped substrate, firing scheduled ChurnEvents as the
// epoch stream passes them. It observes epochs on the transmitting
// primitives, so an event at epoch e takes effect before e's transmissions
// but after e's sensing (both substrates sense before they transmit, which
// keeps them equivalent).
//
// All methods are safe for concurrent use when the wrapped transport is.
type Injector struct {
	inner engine.Transport

	mu     sync.Mutex
	events []ChurnEvent // sorted by epoch
	next   int          // first unapplied event
}

var (
	_ engine.Transport        = (*Injector)(nil)
	_ engine.Unwrapper        = (*Injector)(nil)
	_ engine.ReadingsRecorder = (*Injector)(nil)
)

// Unwrap returns the wrapped transport (engine.Unwrapper).
func (in *Injector) Unwrap() engine.Transport { return in.inner }

// Advance fires every churn event scheduled at or before epoch e. The
// transmitting primitives call it automatically; tests and drivers may call
// it directly to take explicit control of churn timing. Idempotent and
// monotone: an event fires exactly once.
func (in *Injector) Advance(e model.Epoch) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.next < len(in.events) && in.events[in.next].Epoch <= e {
		ev := in.events[in.next]
		in.next++
		in.inner.(vitality).SetNodeDown(ev.Node, ev.Down)
	}
}

// RecordReadings forwards history buffering to the wrapped substrate when
// it records (engine.ReadingsRecorder — the live deployment's windows keep
// filling through the decorator).
func (in *Injector) RecordReadings(e model.Epoch, readings map[model.NodeID]model.Reading) {
	if r, ok := in.inner.(engine.ReadingsRecorder); ok {
		r.RecordReadings(e, readings)
	}
}

// --- engine.Transport, by delegation ---

// Topology implements Transport.
func (in *Injector) Topology() *topo.Placement { return in.inner.Topology() }

// Routing implements Transport.
func (in *Injector) Routing() *topo.Tree { return in.inner.Routing() }

// Alive implements Transport.
func (in *Injector) Alive(id model.NodeID) bool { return in.inner.Alive(id) }

// SendUp implements Transport.
func (in *Injector) SendUp(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	in.Advance(e)
	return in.inner.SendUp(from, kind, e, payload)
}

// SendDown implements Transport.
func (in *Injector) SendDown(from, to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	in.Advance(e)
	return in.inner.SendDown(from, to, kind, e, payload)
}

// BroadcastDown implements Transport.
func (in *Injector) BroadcastDown(kind radio.MsgKind, e model.Epoch, payloadFor func(child model.NodeID) []byte) map[model.NodeID]bool {
	in.Advance(e)
	return in.inner.BroadcastDown(kind, e, payloadFor)
}

// RouteToSink implements Transport.
func (in *Injector) RouteToSink(from model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	in.Advance(e)
	return in.inner.RouteToSink(from, kind, e, payload)
}

// RouteFromSink implements Transport.
func (in *Injector) RouteFromSink(to model.NodeID, kind radio.MsgKind, e model.Epoch, payload []byte) bool {
	in.Advance(e)
	return in.inner.RouteFromSink(to, kind, e, payload)
}

// Sweep implements Transport.
func (in *Injector) Sweep(e model.Epoch, kind radio.MsgKind, readings map[model.NodeID]model.Reading, prune engine.PruneFunc) *model.View {
	in.Advance(e)
	return in.inner.Sweep(e, kind, readings, prune)
}

// ChargeSense implements Transport.
func (in *Injector) ChargeSense(id model.NodeID) { in.inner.ChargeSense(id) }

// ChargeIdleEpoch implements Transport.
func (in *Injector) ChargeIdleEpoch() { in.inner.ChargeIdleEpoch() }

// Snap implements Transport.
func (in *Injector) Snap() sim.Snapshot { return in.inner.Snap() }

// Delta implements Transport.
func (in *Injector) Delta(s sim.Snapshot) sim.Snapshot { return in.inner.Delta(s) }

// Reset implements Transport.
func (in *Injector) Reset() { in.inner.Reset() }
