package faults

import (
	"kspot/internal/model"
	"kspot/internal/radio"
)

// The fault layer's randomness is a keyed hash, not an rng stream: a draw
// depends only on the seed and the message's identity, never on how many
// draws happened before it. Concurrent substrates transmit in arbitrary
// order, so an rng stream would assign different fates per run; the hash
// assigns the same fate everywhere. FNV-1a (64-bit) is cheap, allocation
// free, and plenty uniform for fault probabilities.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// toUnit maps a hash to [0,1). FNV's high bits avalanche poorly on short,
// similar inputs, so a murmur3-style finalizer mixes the state before the
// top 53 bits become the variate.
func toUnit(h uint64) float64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / (1 << 53)
}

// msgDigest folds a message's per-message identity — seed, link, kind,
// epoch and payload content — into a hash. Payload content participates so
// that distinct messages on the same link in the same epoch fade
// independently; operators encode payloads canonically (sorted), so
// content is as deterministic as length. Everything that varies per frame
// (fragment, attempt, fault dimension) is mixed in afterwards by
// frameDigest/unit, so the payload — the only O(n) part — is hashed once
// per message, not once per frame decision (frameModel memoizes it across
// a Transmit's fragment/retry loop).
func msgDigest(seed int64, msg radio.Message) uint64 {
	h := uint64(fnvOffset)
	h = fnv64(h, uint64(seed))
	h = fnv64(h, uint64(msg.From)<<32|uint64(msg.To)<<16|uint64(msg.Kind))
	h = fnv64(h, uint64(msg.Epoch))
	for _, b := range msg.Payload {
		h = fnvByte(h, b)
	}
	return h
}

// frameDigest specializes a message digest to one frame attempt.
func frameDigest(msgH uint64, frag, attempt int) uint64 {
	return fnv64(msgH, uint64(frag)<<32|uint64(uint32(attempt)))
}

// unit derives the uniform [0,1) variate of one fault dimension (salt)
// from a frame digest.
func unit(h, salt uint64) float64 {
	return toUnit(fnv64(h, salt))
}

// draw composes msgDigest+frameDigest+unit in one call — the convenience
// form for tests and one-off decisions.
func draw(seed int64, msg radio.Message, frag, attempt int, salt uint64) float64 {
	return unit(frameDigest(msgDigest(seed, msg), frag, attempt), salt)
}

// KeyedUnit derives a deterministic uniform [0,1) variate from a seed, a
// fault-dimension salt and an identity key — the same keyed-hash discipline
// as the radio tier's frame faults (a draw depends only on the seed and the
// event's identity, never on draw order), exported for layers that inject
// faults on other substrates. internal/wire keys its per-frame loss/dup/
// delay decisions on (seed, salt, rpc sequence, attempt) with it, so a
// socket fault scenario replays identically run over run.
func KeyedUnit(seed int64, salt uint64, key ...uint64) float64 {
	h := uint64(fnvOffset)
	h = fnv64(h, uint64(seed))
	h = fnv64(h, salt)
	for _, k := range key {
		h = fnv64(h, k)
	}
	return toUnit(h)
}

// stepDraw is the per-epoch transition variate of a link's Gilbert-Elliott
// chain — a function of (seed, link, epoch) only.
func stepDraw(seed int64, lo, hi model.NodeID, e model.Epoch) float64 {
	h := uint64(fnvOffset)
	h = fnv64(h, uint64(seed))
	h = fnv64(h, saltBurst)
	h = fnv64(h, uint64(lo)<<16|uint64(hi))
	h = fnv64(h, uint64(e))
	return toUnit(h)
}
