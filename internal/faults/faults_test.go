package faults

import (
	"math"
	"testing"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func fig1Net(t *testing.T, opts sim.Options) *sim.Network {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	return sim.FromTree(p, links, tree, opts)
}

func TestDrawIsIdentityDeterminedAndUniform(t *testing.T) {
	msg := radio.Message{From: 3, To: 1, Kind: radio.KindData, Epoch: 7, Payload: []byte{1, 2, 3}}
	if draw(42, msg, 0, 0, saltLoss) != draw(42, msg, 0, 0, saltLoss) {
		t.Fatal("same identity must give the same draw")
	}
	if draw(42, msg, 0, 0, saltLoss) == draw(42, msg, 0, 1, saltLoss) {
		t.Error("attempt must perturb the draw (retries need fresh randomness)")
	}
	if draw(42, msg, 0, 0, saltLoss) == draw(42, msg, 0, 0, saltDelay) {
		t.Error("salts must decorrelate fault dimensions")
	}
	if draw(42, msg, 0, 0, saltLoss) == draw(43, msg, 0, 0, saltLoss) {
		t.Error("seed must perturb the draw")
	}

	// Mean over many identities should be near 1/2, every value in [0,1).
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		m := radio.Message{From: model.NodeID(i % 50), To: model.NodeID(i % 7), Kind: radio.KindData, Epoch: model.Epoch(i)}
		v := draw(1, m, i%3, i%4, saltLoss)
		if v < 0 || v >= 1 {
			t.Fatalf("draw out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("draw mean = %.4f, want ~0.5", mean)
	}
}

// forcedFate drives Transmit through each FrameFate deterministically.
type forcedFate struct{ fate radio.FrameFate }

func (f forcedFate) Frame(radio.Message, int, int) radio.FrameFate { return f.fate }

func TestFrameFateAccounting(t *testing.T) {
	msg := radio.Message{From: 2, To: 1, Kind: radio.KindData, Epoch: 0, Payload: make([]byte, 10)}
	wire := 10 + radio.DefaultHeaderSize
	cases := []struct {
		name string
		fate radio.FrameFate
		want radio.Accounting
	}{
		{"ok", radio.FrameOK, radio.Accounting{Frames: 1, TxBytes: wire, RxBytes: wire, RxFrames: 1, Delivered: true}},
		{"lost", radio.FrameLost, radio.Accounting{Frames: 3, TxBytes: 3 * wire, Drops: 3, Delivered: false}},
		{"delayed", radio.FrameDelayed, radio.Accounting{Frames: 3, TxBytes: 3 * wire, RxBytes: 3 * wire, RxFrames: 3, Drops: 3, Delivered: false}},
		{"duplicated", radio.FrameDuplicated, radio.Accounting{Frames: 2, TxBytes: 2 * wire, RxBytes: 2 * wire, RxFrames: 2, Delivered: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := radio.DefaultConfig()
			cfg.MaxRetries = 2
			cfg.Fault = forcedFate{tc.fate}
			got := radio.NewLink(cfg).Transmit(msg)
			if got != tc.want {
				t.Errorf("accounting = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestBernoulliDeterminism replays the identical traffic on two fresh
// networks and demands bit-identical counters — the property the
// substrate-equivalence suite leans on.
func TestBernoulliDeterminism(t *testing.T) {
	run := func() sim.Snapshot {
		net := fig1Net(t, sim.DefaultOptions())
		inj, err := Wrap(net, Config{Seed: 7, Loss: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		for e := model.Epoch(0); e < 40; e++ {
			for _, id := range net.Placement.SensorNodes() {
				inj.RouteToSink(id, radio.KindData, e, make([]byte, model.ReadingWireSize))
			}
		}
		return inj.Snap()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged: %+v vs %+v", a, b)
	}
	if a.Messages == 0 {
		t.Fatal("nothing was delivered under 30% loss — loss model too aggressive or transport broken")
	}
	lossless := fig1Net(t, sim.DefaultOptions())
	for e := model.Epoch(0); e < 40; e++ {
		for _, id := range lossless.Placement.SensorNodes() {
			lossless.RouteToSink(id, radio.KindData, e, make([]byte, model.ReadingWireSize))
		}
	}
	clean := lossless.Snap()
	if a.Messages >= clean.Messages {
		t.Errorf("30%% loss delivered %d messages, lossless delivered %d — loss had no effect", a.Messages, clean.Messages)
	}
	if a.Frames <= clean.Frames {
		t.Errorf("30%% loss used %d frames, lossless %d — retries should add frames", a.Frames, clean.Frames)
	}
}

func TestBurstChainsAreOrderIndependent(t *testing.T) {
	spec := BurstSpec{PGoodBad: 0.3, PBadGood: 0.4, LossBad: 0.8}
	msg := func(e model.Epoch) radio.Message {
		return radio.Message{From: 4, To: 2, Kind: radio.KindData, Epoch: e}
	}
	forward := burstLoss(spec, 11)
	var inOrder []float64
	for e := model.Epoch(0); e < 50; e++ {
		inOrder = append(inOrder, forward(msg(e)))
	}
	// A second chain probed backwards (forcing replays) must agree.
	backward := burstLoss(spec, 11)
	for e := 49; e >= 0; e-- {
		if got := backward(msg(model.Epoch(e))); got != inOrder[e] {
			t.Fatalf("epoch %d: backward probe %v, forward %v", e, got, inOrder[e])
		}
	}
	// Both states must actually occur over 50 epochs with these rates.
	seenBad, seenGood := false, false
	for _, p := range inOrder {
		if p == spec.LossBad {
			seenBad = true
		} else {
			seenGood = true
		}
	}
	if !seenBad || !seenGood {
		t.Errorf("chain never changed state over 50 epochs (bad=%v good=%v)", seenBad, seenGood)
	}
}

func TestDistanceLossGrowsWithLinkLength(t *testing.T) {
	p := topo.NewPlacement()
	p.Positions[model.Sink] = topo.Point{X: 0, Y: 0}
	p.Positions[1] = topo.Point{X: 10, Y: 0}
	p.Positions[2] = topo.Point{X: 40, Y: 0}
	at := distanceLoss(DistanceSpec{PAtRef: 0.1, Ref: 10}, p)
	near := at(radio.Message{From: 1, To: model.Sink})
	far := at(radio.Message{From: 2, To: model.Sink})
	if near != 0.1 {
		t.Errorf("loss at reference distance = %v, want 0.1", near)
	}
	if far <= near {
		t.Errorf("longer link must lose more: near %v, far %v", near, far)
	}
	if far > 0.95 {
		t.Errorf("loss must respect the ceiling: %v", far)
	}
}

func TestChurnKillsAndRevives(t *testing.T) {
	net := fig1Net(t, sim.DefaultOptions())
	inj, err := Wrap(net, Config{Churn: []ChurnEvent{
		{Node: 4, Epoch: 2, Down: true},
		{Node: 4, Epoch: 5, Down: false},
	}})
	if err != nil {
		t.Fatal(err)
	}
	send := func(e model.Epoch) bool {
		return inj.SendUp(4, radio.KindData, e, nil)
	}
	if !send(0) || !send(1) {
		t.Fatal("node 4 should deliver before its death")
	}
	if send(2) || send(3) || send(4) {
		t.Error("node 4 should be dead during epochs [2,5)")
	}
	if inj.Alive(4) {
		t.Error("Alive must report the churned node dead")
	}
	if !send(5) || !send(6) {
		t.Error("node 4 should deliver after revival")
	}

	// Epoch advance is monotone: replaying an old epoch re-fires nothing.
	inj.Advance(0)
	if !inj.Alive(4) {
		t.Error("advancing to a past epoch must not re-fire events")
	}
}

func TestChurnRespectsExhaustedBudget(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.BudgetJoules = 1e-9 // effectively nothing
	net := fig1Net(t, opts)
	// Exhaust node 3's budget.
	net.Budgets[3].Spend(10)
	if net.Alive(3) {
		t.Fatal("node 3 should be battery-dead")
	}
	inj, err := Wrap(net, Config{Churn: []ChurnEvent{{Node: 3, Epoch: 1, Down: false}}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(1)
	if inj.Alive(3) {
		t.Error("churn revival must not resurrect a battery-dead node")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"loss", Config{Loss: 0.1}, true},
		{"loss out of range", Config{Loss: 1.0}, false},
		{"negative dup", Config{Duplicate: -0.1}, false},
		{"two models", Config{Loss: 0.1, Burst: &BurstSpec{PGoodBad: 0.1, PBadGood: 0.5, LossBad: 0.5}}, false},
		{"distance needs ref", Config{Distance: &DistanceSpec{PAtRef: 0.1}}, false},
		{"sink churn", Config{Churn: []ChurnEvent{{Node: model.Sink, Epoch: 1, Down: true}}}, false},
		{"full house", Config{Seed: 1, Burst: &BurstSpec{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 0.6}, Duplicate: 0.02, Delay: 0.02, Churn: []ChurnEvent{{Node: 2, Epoch: 3, Down: true}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
	if (&Config{}).Enabled() {
		t.Error("zero config must report disabled")
	}
	if !(&Config{Delay: 0.1}).Enabled() {
		t.Error("delay-only config must report enabled")
	}
}
