package faults

import (
	"bytes"
	"testing"

	"kspot/internal/model"
	"kspot/internal/radio"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// TestFaultHashOrderIndependentUnderParallelSweep pins the package's
// determinism contract against the level-synchronous parallel sweep: fault
// draws are keyed hashes of message identity, never of transmission order,
// so a fully armed environment (burst fades, duplication, delay, churn)
// must assign bit-identical fates — same root views, same counters, same
// drop totals — whatever the sweep's worker count. This is the property
// that lets the parallel compute phase run ahead of the ordered commit
// phase without consulting the fault layer.
func TestFaultHashOrderIndependentUnderParallelSweep(t *testing.T) {
	run := func(workers int) ([]byte, sim.Snapshot) {
		p := topo.Rooms(10, 8, 12, 31)
		opts := sim.DefaultOptions()
		opts.Parallel = workers
		net, err := sim.New(p, 25, opts)
		if err != nil {
			t.Fatalf("build network: %v", err)
		}
		sensors := p.SensorNodes()
		inj, err := Wrap(net, Config{
			Seed:      9,
			Burst:     &BurstSpec{PGoodBad: 0.15, PBadGood: 0.4, LossBad: 0.6},
			Duplicate: 0.05,
			Delay:     0.05,
			Churn: []ChurnEvent{
				{Node: sensors[3], Epoch: 5, Down: true},
				{Node: sensors[11], Epoch: 8, Down: true},
				{Node: sensors[11], Epoch: 14, Down: false},
			},
		})
		if err != nil {
			t.Fatalf("wrap: %v", err)
		}
		src := trace.NewRoomActivity(9, p.Groups, 10)
		var roots []byte
		for e := model.Epoch(0); e < 20; e++ {
			inj.Advance(e)
			readings := make(map[model.NodeID]model.Reading)
			for _, id := range sensors {
				if inj.Alive(id) {
					readings[id] = model.Reading{Node: id, Group: p.Groups[id], Epoch: e, Value: src.Sample(id, e)}
				}
			}
			roots = model.AppendView(roots, inj.Sweep(e, radio.KindData, readings, nil))
		}
		return roots, net.Snap()
	}
	wantRoots, wantSnap := run(1)
	if wantSnap.Drops == 0 {
		t.Fatal("fault environment never dropped a frame — the test exercises nothing")
	}
	for _, workers := range []int{2, 6} {
		roots, snap := run(workers)
		if !bytes.Equal(roots, wantRoots) {
			t.Errorf("workers=%d: root views diverge from sequential under faults", workers)
		}
		if snap != wantSnap {
			t.Errorf("workers=%d: accounting %+v, want %+v", workers, snap, wantSnap)
		}
	}
}
