package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartialCodecRoundTrip(t *testing.T) {
	p := Partial{Group: 42, SumFP: 12345, Count: 7, MinFP: -150, MaxFP: 9999}
	buf := AppendPartial(nil, p)
	if len(buf) != PartialWireSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), PartialWireSize)
	}
	got, rest, err := DecodePartial(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if got != p {
		t.Errorf("round trip %+v -> %+v", p, got)
	}
}

func TestPartialCodecCountSaturates(t *testing.T) {
	p := Partial{Group: 1, SumFP: 100, Count: 1 << 20, MinFP: 100, MaxFP: 100}
	got, _, err := DecodePartial(AppendPartial(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 0xFFFF {
		t.Errorf("count = %d, want saturation at 65535", got.Count)
	}
}

func TestAnswerCodecRoundTrip(t *testing.T) {
	a := Answer{Group: 9, Score: 74.5}
	buf := AppendAnswer(nil, a)
	if len(buf) != AnswerWireSize {
		t.Fatalf("size = %d", len(buf))
	}
	got, _, err := DecodeAnswer(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("round trip %+v -> %+v", a, got)
	}
}

func TestReadingCodecRoundTrip(t *testing.T) {
	r := Reading{Node: 3, Group: 4, Epoch: 12345, Value: -42.42}
	buf := AppendReading(nil, r)
	if len(buf) != ReadingWireSize {
		t.Fatalf("size = %d", len(buf))
	}
	got, _, err := DecodeReading(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip %+v -> %+v", r, got)
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	if _, _, err := DecodePartial(make([]byte, PartialWireSize-1)); err == nil {
		t.Error("DecodePartial accepted short buffer")
	}
	if _, _, err := DecodeAnswer(make([]byte, AnswerWireSize-1)); err == nil {
		t.Error("DecodeAnswer accepted short buffer")
	}
	if _, _, err := DecodeReading(make([]byte, ReadingWireSize-1)); err == nil {
		t.Error("DecodeReading accepted short buffer")
	}
}

func TestViewCodecRoundTrip(t *testing.T) {
	v := NewView()
	for i := 0; i < 8; i++ {
		v.Add(Reading{Node: NodeID(i), Group: GroupID(i % 3), Value: Value(i) * 1.25})
	}
	buf := EncodeView(v)
	if len(buf) != ViewWireSize(v) {
		t.Fatalf("encoded %d bytes, ViewWireSize says %d", len(buf), ViewWireSize(v))
	}
	got, err := DecodeView(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != v.Len() {
		t.Fatalf("decoded %d groups, want %d", got.Len(), v.Len())
	}
	for _, g := range v.Groups() {
		want, _ := v.Get(g)
		have, ok := got.Get(g)
		if !ok || have != want {
			t.Errorf("group %d: %+v, want %+v", g, have, want)
		}
	}
}

func TestDecodeViewBadLength(t *testing.T) {
	if _, err := DecodeView(make([]byte, PartialWireSize+1)); err == nil {
		t.Error("DecodeView accepted misaligned payload")
	}
}

// Property: codec round-trips preserve quantized values for arbitrary inputs.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(group uint16, sumRaw int32, count uint16) bool {
		p := Partial{
			Group: GroupID(group),
			SumFP: int64(sumRaw),
			Count: uint32(count),
			MinFP: FixedPoint(sumRaw / 2),
			MaxFP: FixedPoint(sumRaw),
		}
		if p.Count == 0 {
			p.Count = 1
		}
		got, _, err := DecodePartial(AppendPartial(nil, p))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeViewDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewView()
	for i := 0; i < 20; i++ {
		v.Add(Reading{Node: NodeID(i), Group: GroupID(rng.Intn(6)), Value: Value(rng.Intn(1000))})
	}
	a, b := EncodeView(v), EncodeView(v)
	if string(a) != string(b) {
		t.Error("EncodeView is not deterministic")
	}
}
