package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedPointRoundTrip(t *testing.T) {
	cases := []Value{0, 1, -1, 75, 74.5, 76.55, 0.01, -0.01, 99.99, 1234.56}
	for _, v := range cases {
		if got := FromFixed(ToFixed(v)); got != v {
			t.Errorf("round trip %.4f -> %.4f", v, got)
		}
	}
}

func TestFixedPointRounding(t *testing.T) {
	if got := Quantize(75.004); got != 75.00 {
		t.Errorf("Quantize(75.004) = %v, want 75.00", got)
	}
	if got := Quantize(75.006); got != 75.01 {
		t.Errorf("Quantize(75.006) = %v, want 75.01", got)
	}
}

func TestFixedPointSaturates(t *testing.T) {
	if got := ToFixed(Value(1e18)); got != math.MaxInt32 {
		t.Errorf("ToFixed(+huge) = %d, want MaxInt32", got)
	}
	if got := ToFixed(Value(-1e18)); got != math.MinInt32 {
		t.Errorf("ToFixed(-huge) = %d, want MinInt32", got)
	}
}

func TestPartialMerge(t *testing.T) {
	a := NewPartial(3, 10)
	b := NewPartial(3, 20)
	m := a.Merge(b)
	if m.Sum() != 30 || m.Count != 2 || m.Min() != 10 || m.Max() != 20 {
		t.Errorf("merge = %+v", m)
	}
	if got := m.Eval(AggAvg); got != 15 {
		t.Errorf("avg = %v, want 15", got)
	}
}

func TestPartialMergeEmpty(t *testing.T) {
	var empty Partial
	p := NewPartial(1, 5)
	if got := empty.Merge(p); got != p {
		t.Errorf("empty.Merge(p) = %+v, want %+v", got, p)
	}
	if got := p.Merge(empty); got != p {
		t.Errorf("p.Merge(empty) = %+v, want %+v", got, p)
	}
}

func TestPartialMergeGroupMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging different groups")
		}
	}()
	NewPartial(1, 5).Merge(NewPartial(2, 5))
}

func TestPartialEval(t *testing.T) {
	p := NewPartial(1, 10).Merge(NewPartial(1, 30))
	tests := []struct {
		kind AggKind
		want Value
	}{
		{AggAvg, 20}, {AggMin, 10}, {AggMax, 30}, {AggSum, 40}, {AggCount, 2},
	}
	for _, tc := range tests {
		if got := p.Eval(tc.kind); got != tc.want {
			t.Errorf("%v = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestPartialEvalEmpty(t *testing.T) {
	var p Partial
	if got := p.Eval(AggSum); got != 0 {
		t.Errorf("empty SUM = %v", got)
	}
	if got := p.Eval(AggCount); got != 0 {
		t.Errorf("empty COUNT = %v", got)
	}
	if !math.IsNaN(float64(p.Eval(AggAvg))) {
		t.Errorf("empty AVG = %v, want NaN", p.Eval(AggAvg))
	}
	if !math.IsNaN(float64(p.Eval(AggMin))) {
		t.Errorf("empty MIN = %v, want NaN", p.Eval(AggMin))
	}
}

func TestParseAggKind(t *testing.T) {
	for _, s := range []string{"AVG", "AVERAGE", "avg"} {
		if k, ok := ParseAggKind(s); !ok || k != AggAvg {
			t.Errorf("ParseAggKind(%q) = %v,%v", s, k, ok)
		}
	}
	if _, ok := ParseAggKind("MEDIAN"); ok {
		t.Error("MEDIAN should not parse")
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX", AggSum: "SUM", AggCount: "COUNT"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// TestViewFigure1 reproduces the in-network view of the paper's Figure 1:
// rooms A..D mapped to groups 1..4, nine sensors, AVG(sound). The sink view
// must rank C first with 75, then A with 74.5, D with 64, B with 41.
func TestViewFigure1(t *testing.T) {
	const (
		roomA GroupID = 1
		roomB GroupID = 2
		roomC GroupID = 3
		roomD GroupID = 4
	)
	v := NewView()
	// s1=40 (B), s2=74 (A), s3=75 (A), s4=42 (B), s5=75 (C), s6=75 (C),
	// s7=78 (D), s8=75 (D), s9=39 (D). Matches the figure's labels.
	for _, r := range []Reading{
		{Node: 1, Group: roomB, Value: 40},
		{Node: 2, Group: roomA, Value: 74},
		{Node: 3, Group: roomA, Value: 75},
		{Node: 4, Group: roomB, Value: 42},
		{Node: 5, Group: roomC, Value: 75},
		{Node: 6, Group: roomC, Value: 75},
		{Node: 7, Group: roomD, Value: 78},
		{Node: 8, Group: roomD, Value: 75},
		{Node: 9, Group: roomD, Value: 39},
	} {
		v.Add(r)
	}
	top := v.TopK(AggAvg, 4)
	want := []Answer{{roomC, 75}, {roomA, 74.5}, {roomD, 64}, {roomB, 41}}
	if !EqualAnswers(top, want) {
		t.Fatalf("Figure 1 ranking = %v, want %v", top, want)
	}
	if top1 := v.TopK(AggAvg, 1); top1[0].Group != roomC {
		t.Fatalf("top-1 = %v, want room C", top1)
	}
}

func TestViewTopKTieBreak(t *testing.T) {
	v := NewView()
	v.Add(Reading{Node: 1, Group: 7, Value: 50})
	v.Add(Reading{Node: 2, Group: 3, Value: 50})
	top := v.TopK(AggAvg, 2)
	if top[0].Group != 3 || top[1].Group != 7 {
		t.Errorf("tie break = %v, want group 3 before 7", top)
	}
}

func TestViewTopKZero(t *testing.T) {
	v := NewView()
	v.Add(Reading{Group: 1, Value: 5})
	if got := v.TopK(AggAvg, 0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
}

func TestViewMergeSupersetProperty(t *testing.T) {
	// A parent view merged from children must equal the view built from all
	// readings directly — the MINT hierarchy-of-views invariant.
	rng := rand.New(rand.NewSource(42))
	direct := NewView()
	children := []*View{NewView(), NewView(), NewView()}
	for i := 0; i < 300; i++ {
		r := Reading{Node: NodeID(i), Group: GroupID(rng.Intn(10)), Value: Value(rng.Intn(10000)) / 100}
		direct.Add(r)
		children[rng.Intn(3)].Add(r)
	}
	merged := NewView()
	for _, c := range children {
		merged.MergeView(c)
	}
	if !EqualAnswers(merged.TopK(AggAvg, 10), direct.TopK(AggAvg, 10)) {
		t.Errorf("merged view ranking differs from direct view")
	}
	if merged.Len() != direct.Len() {
		t.Errorf("merged.Len=%d direct.Len=%d", merged.Len(), direct.Len())
	}
}

func TestViewClone(t *testing.T) {
	v := NewView()
	v.Add(Reading{Group: 1, Value: 10})
	c := v.Clone()
	c.Add(Reading{Group: 1, Value: 20})
	p, _ := v.Get(1)
	if p.Count != 1 {
		t.Errorf("clone mutated original: %+v", p)
	}
}

func TestViewRemove(t *testing.T) {
	v := NewView()
	v.Add(Reading{Group: 1, Value: 10})
	v.Add(Reading{Group: 2, Value: 20})
	v.Remove(1)
	if _, ok := v.Get(1); ok {
		t.Error("group 1 still present after Remove")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d, want 1", v.Len())
	}
}

func TestKthScore(t *testing.T) {
	answers := []Answer{{1, 30}, {2, 20}, {3, 10}}
	if got := KthScore(answers, 2); got != 20 {
		t.Errorf("KthScore(2) = %v", got)
	}
	if got := KthScore(answers, 4); !math.IsInf(float64(got), -1) {
		t.Errorf("KthScore beyond len = %v, want -Inf", got)
	}
	if got := KthScore(answers, 0); !math.IsInf(float64(got), -1) {
		t.Errorf("KthScore(0) = %v, want -Inf", got)
	}
}

func TestRecall(t *testing.T) {
	want := []Answer{{1, 3}, {2, 2}, {3, 1}}
	if got := Recall([]Answer{{1, 3}, {2, 2}, {3, 1}}, want); got != 1 {
		t.Errorf("perfect recall = %v", got)
	}
	if got := Recall([]Answer{{1, 3}, {9, 2}, {8, 1}}, want); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("recall = %v, want 1/3", got)
	}
	if got := Recall(nil, nil); got != 1 {
		t.Errorf("empty recall = %v, want 1", got)
	}
}

func TestSortAnswersStable(t *testing.T) {
	a := []Answer{{5, 10}, {2, 10}, {9, 20}}
	SortAnswers(a)
	if a[0].Group != 9 || a[1].Group != 2 || a[2].Group != 5 {
		t.Errorf("sorted = %v", a)
	}
}

// Property: TopK never returns more than K answers and is a prefix of the
// full ranking.
func TestTopKPrefixProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewView()
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			v.Add(Reading{Node: NodeID(i), Group: GroupID(rng.Intn(12)), Value: Value(rng.Intn(5000)) / 100})
		}
		k := 1 + int(kRaw)%16
		full := v.TopK(AggAvg, v.Len())
		top := v.TopK(AggAvg, k)
		if len(top) > k {
			return false
		}
		for i := range top {
			if top[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestViewReuseAllocationFree pins the steady-state contract of the pooled
// view representation: once a view and an answer buffer have capacity,
// Reset + Add + TopKInto cycles allocate nothing. This is the invariant the
// epoch hot path (sim.Sweep, engine.Live, the operators) is built on.
func TestViewReuseAllocationFree(t *testing.T) {
	v := NewView()
	buf := make([]Answer, 0, 16)
	cycle := func() {
		v.Reset()
		for i := 0; i < 32; i++ {
			v.Add(Reading{Node: NodeID(i), Group: GroupID(i % 8), Value: Value(i * 3 % 97)})
		}
		buf = v.TopKInto(AggAvg, 3, buf)
		if len(buf) != 3 {
			t.Fatal("TopKInto lost answers")
		}
	}
	cycle() // warm the capacities
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("View reuse cycle allocates %v times per run, want 0", allocs)
	}
}

// TestCodecCallerBufferAllocationFree pins the codec side: a view round-trip
// through AppendView and DecodeViewInto with caller-owned buffers allocates
// nothing in steady state.
func TestCodecCallerBufferAllocationFree(t *testing.T) {
	v := NewView()
	for i := 0; i < 32; i++ {
		v.Add(Reading{Node: NodeID(i), Group: GroupID(i % 8), Value: Value(i)})
	}
	buf := make([]byte, 0, ViewWireSize(v))
	dec := NewView()
	cycle := func() {
		buf = AppendView(buf[:0], v)
		if err := DecodeViewInto(dec, buf); err != nil {
			t.Fatal(err)
		}
		if dec.Len() != v.Len() {
			t.Fatal("round trip lost groups")
		}
	}
	cycle() // warm the decode view's capacity
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("codec round trip allocates %v times per run, want 0", allocs)
	}
}

// TestViewMapSpillSemantics drives a view across the slice→map threshold
// and checks the two representations answer identically (Get/Remove/Len,
// sorted iteration, TopK ranking).
func TestViewMapSpillSemantics(t *testing.T) {
	v := NewView()
	const groups = 3 * viewMapThreshold
	for i := 0; i < groups; i++ {
		v.Add(Reading{Node: NodeID(i), Group: GroupID(i), Value: Value(i % 101)})
	}
	if v.Len() != groups {
		t.Fatalf("Len = %d, want %d", v.Len(), groups)
	}
	if v.m == nil {
		t.Fatalf("view with %d groups did not spill to the map representation", groups)
	}
	gs := v.Groups()
	for i := 1; i < len(gs); i++ {
		if gs[i-1] >= gs[i] {
			t.Fatal("Groups not sorted after spill")
		}
	}
	if p, ok := v.Get(GroupID(groups - 1)); !ok || p.Count != 1 {
		t.Fatalf("Get after spill = %+v, %v", p, ok)
	}
	v.Remove(GroupID(5))
	if _, ok := v.Get(GroupID(5)); ok || v.Len() != groups-1 {
		t.Fatal("Remove after spill failed")
	}
	// Ranking agrees with a small-view rebuild of the same content.
	small := NewView()
	v.ForEach(func(p Partial) { small.AddPartial(p) })
	if !EqualAnswers(v.TopK(AggAvg, 10), small.TopK(AggAvg, 10)) {
		t.Fatal("TopK disagrees across representations")
	}
	// And the wire form round-trips identically.
	got, err := DecodeView(EncodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualAnswers(v.TopK(AggAvg, groups), got.TopK(AggAvg, groups)) {
		t.Fatal("encode/decode after spill lost content")
	}
}
