// Package model defines the shared data vocabulary of the KSpot system:
// node and group identifiers, sensor readings, per-group partial aggregates,
// in-network views, and the fixed-point wire representation used for byte
// accounting. Every other package (simulator, operators, query engine,
// statistics) speaks these types.
//
// Values are carried as fixed-point integers (centi-units) on the wire, the
// way a TinyOS mote would encode a 10-bit ADC sample, so that the byte costs
// reported by the System Panel reflect what a real MICA2 deployment pays.
package model

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"
)

// NodeID identifies a sensor node. The sink (base station) is always node 0,
// mirroring the paper's Figure 1 where the querying node is s0.
type NodeID uint16

// Sink is the NodeID of the base station.
const Sink NodeID = 0

// GroupID identifies a logical group (a room, a cluster, or a time instant in
// historic queries). GROUP BY attributes are mapped to GroupIDs by the
// scenario configuration.
type GroupID uint16

// NoGroup is the zero GroupID used when a query has no GROUP BY clause.
const NoGroup GroupID = 0

// Epoch numbers the rounds of a continuous query, starting at 0 (the epoch
// MINT calls the creation phase).
type Epoch uint32

// Value is a sensed value in engineering units (e.g. sound level percent,
// temperature in Fahrenheit). It travels the network as a fixed-point
// centi-unit (see FixedPoint).
type Value float64

// FixedPoint is the wire representation of a Value: hundredths of a unit in a
// signed 32-bit integer, the resolution the MTS310 board's 10-bit ADC
// meaningfully provides after calibration.
type FixedPoint int32

// ToFixed converts a Value to its wire representation, saturating at the
// int32 range rather than wrapping.
func ToFixed(v Value) FixedPoint {
	scaled := math.Round(float64(v) * 100)
	switch {
	case scaled > math.MaxInt32:
		return math.MaxInt32
	case scaled < math.MinInt32:
		return math.MinInt32
	}
	return FixedPoint(scaled)
}

// FromFixed converts a wire value back to engineering units.
func FromFixed(f FixedPoint) Value { return Value(f) / 100 }

// Quantize rounds a Value to the resolution that survives a wire round-trip.
// Operators compare quantized values so that simulator results match what a
// real deployment, limited to fixed-point radio payloads, would compute.
func Quantize(v Value) Value { return FromFixed(ToFixed(v)) }

// Reading is a single sample produced by a node at an epoch.
type Reading struct {
	Node  NodeID
	Group GroupID
	Epoch Epoch
	Value Value
}

func (r Reading) String() string {
	return fmt.Sprintf("s%d@e%d[g%d]=%.2f", r.Node, r.Epoch, r.Group, r.Value)
}

// AggKind enumerates the aggregate functions the KSpot query panel offers
// (the paper's Query Panel exposes AVG, MIN and MAX; SUM and COUNT come for
// free since AVG is carried as sum+count).
type AggKind uint8

const (
	AggAvg AggKind = iota
	AggMin
	AggMax
	AggSum
	AggCount
)

func (a AggKind) String() string {
	switch a {
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(a))
	}
}

// ParseAggKind maps the SQL spelling of an aggregate to its AggKind.
func ParseAggKind(s string) (AggKind, bool) {
	switch s {
	case "AVG", "AVERAGE", "avg", "average":
		return AggAvg, true
	case "MIN", "min":
		return AggMin, true
	case "MAX", "max":
		return AggMax, true
	case "SUM", "sum":
		return AggSum, true
	case "COUNT", "count":
		return AggCount, true
	}
	return AggAvg, false
}

// Partial is a decomposable partial aggregate for one group: the classic TAG
// (sum, count, min, max) record that merges associatively up the routing
// tree. Sums are held in fixed-point centi-units (SumFP) so that merging is
// exactly associative and commutative — the sink computes the same
// aggregate no matter how the routing tree shaped the additions, which is
// what a mote summing ADC integers does and what makes distributed results
// bit-identical to the centralized oracle.
type Partial struct {
	Group GroupID
	SumFP int64 // centi-units
	Count uint32
	MinFP FixedPoint
	MaxFP FixedPoint
}

// NewPartial seeds a partial aggregate from a single reading.
func NewPartial(g GroupID, v Value) Partial {
	f := ToFixed(v)
	return Partial{Group: g, SumFP: int64(f), Count: 1, MinFP: f, MaxFP: f}
}

// Sum returns the partial's sum in engineering units.
func (p Partial) Sum() Value { return Value(p.SumFP) / 100 }

// Min returns the minimum in engineering units.
func (p Partial) Min() Value { return FromFixed(p.MinFP) }

// Max returns the maximum in engineering units.
func (p Partial) Max() Value { return FromFixed(p.MaxFP) }

// Merge combines two partials of the same group. It panics if the groups
// differ, because merging across groups is always a caller bug.
func (p Partial) Merge(q Partial) Partial {
	if p.Count == 0 {
		return q
	}
	if q.Count == 0 {
		return p
	}
	if p.Group != q.Group {
		panic(fmt.Sprintf("model: merging partials of groups %d and %d", p.Group, q.Group))
	}
	out := Partial{Group: p.Group, SumFP: p.SumFP + q.SumFP, Count: p.Count + q.Count, MinFP: p.MinFP, MaxFP: p.MaxFP}
	if q.MinFP < out.MinFP {
		out.MinFP = q.MinFP
	}
	if q.MaxFP > out.MaxFP {
		out.MaxFP = q.MaxFP
	}
	return out
}

// Eval produces the aggregate's value under the given function. Eval of an
// empty partial is 0 for SUM/COUNT and NaN otherwise, so that callers can
// detect "no data" for order-sensitive aggregates. AVG divides the exact
// integer sum once, so its value is independent of merge order.
func (p Partial) Eval(kind AggKind) Value {
	if p.Count == 0 {
		if kind == AggSum || kind == AggCount {
			return 0
		}
		return Value(math.NaN())
	}
	switch kind {
	case AggAvg:
		return Value(p.SumFP) / Value(p.Count) / 100
	case AggMin:
		return p.Min()
	case AggMax:
		return p.Max()
	case AggSum:
		return p.Sum()
	case AggCount:
		return Value(p.Count)
	default:
		return Value(math.NaN())
	}
}

// Answer is one ranked result row: a group and its aggregate score.
type Answer struct {
	Group GroupID
	Score Value
}

func (a Answer) String() string { return fmt.Sprintf("(g%d, %.2f)", a.Group, a.Score) }

// viewMapThreshold is the group count above which a View switches from its
// sorted-slice representation to a map. Hot-path views (one node's subtree)
// hold at most a handful of groups and stay in the slice; only wide sink
// views on large deployments spill.
const viewMapThreshold = 48

// View is an in-network view V_i: the per-group partial aggregates a node
// knows about its routing subtree. Views merge associatively (the superset
// property of MINT's hierarchy of views).
//
// Small views (the common case on the epoch hot path) are a slice of
// partials sorted by group id, so that building, merging, encoding and
// ranking one allocates nothing once capacity exists; views wider than
// viewMapThreshold groups fall back to a map. Reset clears a view for reuse
// keeping its capacity, and AcquireView/ReleaseView recycle views through a
// pool — the transports and operators use them to run steady-state epochs
// without allocating.
type View struct {
	sorted  []Partial           // sorted by Group; authoritative when m == nil
	m       map[GroupID]Partial // authoritative when non-nil
	scratch []Partial           // reused by sortedPartials in map mode
}

// NewView returns an empty view.
func NewView() *View { return &View{} }

// viewPool recycles views for the epoch hot path.
var viewPool = sync.Pool{New: func() any { return new(View) }}

// AcquireView returns an empty view from the pool. Pair with ReleaseView
// when the view's lifetime is over.
func AcquireView() *View { return viewPool.Get().(*View) }

// ReleaseView resets a view and returns it to the pool. The caller must not
// use v afterwards. Releasing nil is a no-op.
func ReleaseView(v *View) {
	if v == nil {
		return
	}
	v.Reset()
	viewPool.Put(v)
}

// Reset empties the view for reuse, keeping the slice capacity.
func (v *View) Reset() {
	v.sorted = v.sorted[:0]
	v.m = nil
}

// find locates a group in the sorted-slice representation.
func (v *View) find(g GroupID) (int, bool) {
	return slices.BinarySearchFunc(v.sorted, g, func(p Partial, g GroupID) int {
		return cmp.Compare(p.Group, g)
	})
}

// spill migrates the slice representation into a map.
func (v *View) spill() {
	v.m = make(map[GroupID]Partial, 2*viewMapThreshold)
	for _, p := range v.sorted {
		v.m[p.Group] = p
	}
	v.sorted = v.sorted[:0]
}

// Add merges a single reading into the view.
func (v *View) Add(r Reading) { v.AddPartial(NewPartial(r.Group, r.Value)) }

// AddPartial merges a partial aggregate into the view.
func (v *View) AddPartial(p Partial) {
	if p.Count == 0 {
		return
	}
	if v.m != nil {
		if cur, ok := v.m[p.Group]; ok {
			v.m[p.Group] = cur.Merge(p)
		} else {
			v.m[p.Group] = p
		}
		return
	}
	i, ok := v.find(p.Group)
	if ok {
		v.sorted[i] = v.sorted[i].Merge(p)
		return
	}
	if len(v.sorted) >= viewMapThreshold {
		v.spill()
		v.m[p.Group] = p
		return
	}
	v.sorted = slices.Insert(v.sorted, i, p)
}

// MergeView folds another view into this one.
func (v *View) MergeView(o *View) {
	if o == nil {
		return
	}
	if o.m != nil {
		for _, p := range o.m {
			v.AddPartial(p)
		}
		return
	}
	for _, p := range o.sorted {
		v.AddPartial(p)
	}
}

// ForEach calls f for every partial in the view, in unspecified order (the
// zero-allocation iteration of the epoch hot path; partial merging is
// commutative, so order never affects results). f must not mutate the view.
func (v *View) ForEach(f func(p Partial)) {
	if v.m != nil {
		for _, p := range v.m {
			f(p)
		}
		return
	}
	for _, p := range v.sorted {
		f(p)
	}
}

// Get returns the partial for a group, if present.
func (v *View) Get(g GroupID) (Partial, bool) {
	if v.m != nil {
		p, ok := v.m[g]
		return p, ok
	}
	if i, ok := v.find(g); ok {
		return v.sorted[i], true
	}
	return Partial{}, false
}

// Remove deletes a group's partial from the view (used by pruning phases).
func (v *View) Remove(g GroupID) {
	if v.m != nil {
		delete(v.m, g)
		return
	}
	if i, ok := v.find(g); ok {
		v.sorted = slices.Delete(v.sorted, i, i+1)
	}
}

// Len reports the number of groups present.
func (v *View) Len() int {
	if v.m != nil {
		return len(v.m)
	}
	return len(v.sorted)
}

// sortedPartials returns the partials sorted by group id without copying in
// slice mode; map mode sorts into the view's reusable scratch slice. The
// returned slice is valid until the view is next mutated.
func (v *View) sortedPartials() []Partial {
	if v.m == nil {
		return v.sorted
	}
	v.scratch = v.scratch[:0]
	for _, p := range v.m {
		v.scratch = append(v.scratch, p)
	}
	slices.SortFunc(v.scratch, func(a, b Partial) int { return cmp.Compare(a.Group, b.Group) })
	return v.scratch
}

// Groups returns the group ids present, sorted, for deterministic iteration.
func (v *View) Groups() []GroupID {
	gs := make([]GroupID, 0, v.Len())
	for _, p := range v.sortedPartials() {
		gs = append(gs, p.Group)
	}
	return gs
}

// Partials returns the partials sorted by group id (a fresh copy).
func (v *View) Partials() []Partial {
	return append([]Partial(nil), v.sortedPartials()...)
}

// Clone returns a deep copy of the view.
func (v *View) Clone() *View {
	c := NewView()
	c.sorted = append(c.sorted, v.sortedPartials()...)
	if len(c.sorted) > viewMapThreshold {
		c.spill()
	}
	return c
}

// TopK ranks the view's groups by the aggregate and returns the K best
// answers. Ties break toward the smaller group id so that every component of
// the system (operators, reference evaluator, tests) agrees on one total
// order. Scores are quantized to wire resolution first: a real deployment
// never sees sub-centiunit differences, and the simulator must not either.
func (v *View) TopK(kind AggKind, k int) []Answer {
	if k <= 0 {
		return nil
	}
	return v.TopKInto(kind, k, make([]Answer, 0, v.Len()))
}

// TopKInto is TopK ranking into a caller-provided buffer: dst is truncated,
// filled, ranked and returned (re-sliced or grown as needed). With enough
// capacity it allocates nothing, which is what lets steady-state epochs run
// allocation-free.
func (v *View) TopKInto(kind AggKind, k int, dst []Answer) []Answer {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	if v.m != nil {
		for _, p := range v.m {
			dst = append(dst, Answer{Group: p.Group, Score: Quantize(p.Eval(kind))})
		}
	} else {
		for _, p := range v.sorted {
			dst = append(dst, Answer{Group: p.Group, Score: Quantize(p.Eval(kind))})
		}
	}
	SortAnswers(dst)
	if len(dst) > k {
		dst = dst[:k]
	}
	return dst
}

// SortAnswers orders answers by descending score, then ascending group id.
// It is the single ranking order used across the system. The comparator is a
// total order (group ids are unique within a slice), so the sort needs no
// stability and runs without allocating.
func SortAnswers(answers []Answer) {
	slices.SortFunc(answers, func(a, b Answer) int {
		if c := cmp.Compare(b.Score, a.Score); c != 0 {
			return c
		}
		return cmp.Compare(a.Group, b.Group)
	})
}

// KthScore returns the score of the k-th ranked answer (1-based), or
// negative infinity when fewer than k answers exist. This is MINT's γ bound.
func KthScore(answers []Answer, k int) Value {
	if k <= 0 || len(answers) < k {
		return Value(math.Inf(-1))
	}
	return answers[k-1].Score
}

// AnswerSet converts a ranked slice to a membership set.
func AnswerSet(answers []Answer) map[GroupID]bool {
	s := make(map[GroupID]bool, len(answers))
	for _, a := range answers {
		s[a.Group] = true
	}
	return s
}

// EqualAnswers reports whether two ranked answer slices are identical in
// order, group and score (after quantization).
func EqualAnswers(a, b []Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Group != b[i].Group || Quantize(a[i].Score) != Quantize(b[i].Score) {
			return false
		}
	}
	return true
}

// Recall computes |got ∩ want| / |want| over the group sets of two answer
// slices — the metric experiment E9 reports for the naive strategy.
func Recall(got, want []Answer) float64 {
	if len(want) == 0 {
		return 1
	}
	ws := AnswerSet(want)
	hit := 0
	for _, a := range got {
		if ws[a.Group] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
