package model

import (
	"bytes"
	"math"
	"testing"
)

// FuzzPartialRoundTrip drives the wire codec with arbitrary field values.
// Within the wire format's representable ranges (int32 sums, uint16
// counts) encoding must round-trip exactly; outside them it must saturate,
// and saturation must be idempotent (re-encoding the decoded record
// reproduces the same bytes).
func FuzzPartialRoundTrip(f *testing.F) {
	f.Add(uint16(3), int64(7550), uint32(2), int32(3500), int32(4050))
	f.Add(uint16(0), int64(0), uint32(0), int32(0), int32(0))
	f.Add(uint16(65535), int64(math.MaxInt64), uint32(math.MaxUint32), int32(math.MinInt32), int32(math.MaxInt32))
	f.Add(uint16(1), int64(math.MinInt64), uint32(70000), int32(-100), int32(100))
	f.Fuzz(func(t *testing.T, group uint16, sum int64, count uint32, minFP, maxFP int32) {
		p := Partial{Group: GroupID(group), SumFP: sum, Count: count, MinFP: FixedPoint(minFP), MaxFP: FixedPoint(maxFP)}
		enc := AppendPartial(nil, p)
		if len(enc) != PartialWireSize {
			t.Fatalf("encoded %d bytes, want %d", len(enc), PartialWireSize)
		}
		dec, rest, err := DecodePartial(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		// Saturation semantics.
		wantSum := sum
		if wantSum > math.MaxInt32 {
			wantSum = math.MaxInt32
		}
		if wantSum < math.MinInt32 {
			wantSum = math.MinInt32
		}
		wantCount := count
		if wantCount > 0xFFFF {
			wantCount = 0xFFFF
		}
		want := Partial{Group: GroupID(group), SumFP: wantSum, Count: wantCount, MinFP: FixedPoint(minFP), MaxFP: FixedPoint(maxFP)}
		if dec != want {
			t.Fatalf("decoded %+v, want %+v", dec, want)
		}
		// Idempotence: a decoded (already saturated) record re-encodes to
		// the identical bytes.
		if re := AppendPartial(nil, dec); !bytes.Equal(re, enc) {
			t.Fatalf("re-encoding changed bytes: %x -> %x", enc, re)
		}
	})
}

// FuzzDecodeView hammers the view codec with arbitrary byte strings: it
// must never panic, must reject lengths that are not a whole number of
// partials, and any accepted payload must re-encode/decode to a stable
// normal form (partials sorted by group, same-group partials merged).
func FuzzDecodeView(f *testing.F) {
	v := NewView()
	v.Add(Reading{Node: 1, Group: 2, Epoch: 0, Value: 40})
	v.Add(Reading{Node: 2, Group: 2, Epoch: 0, Value: 35})
	v.Add(Reading{Node: 3, Group: 5, Epoch: 0, Value: 80})
	f.Add(EncodeView(v))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, PartialWireSize))
	f.Add(bytes.Repeat([]byte{0x01}, PartialWireSize*3))
	f.Add([]byte{1, 2, 3}) // not a multiple of the record size
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeView(data)
		if len(data)%PartialWireSize != 0 {
			if err == nil {
				t.Fatalf("accepted ragged payload of %d bytes", len(data))
			}
			return
		}
		if err != nil {
			return
		}
		// Decoding merges same-group partials, whose merged sums/counts may
		// exceed the wire ranges; encoding saturates them. So the stable
		// normal form begins after one encode: encode(decode(x)) must be a
		// byte-level fixpoint of decode∘encode.
		enc := EncodeView(got)
		again, err := DecodeView(enc)
		if err != nil {
			t.Fatalf("re-encoded view failed to decode: %v", err)
		}
		if re := EncodeView(again); !bytes.Equal(re, enc) {
			t.Fatalf("normal form unstable: %x -> %x", enc, re)
		}
		if got.Len() != again.Len() {
			t.Fatalf("group count changed across encode: %d vs %d", got.Len(), again.Len())
		}
	})
}

// FuzzReadingAnswerRoundTrip covers the two remaining wire records.
func FuzzReadingAnswerRoundTrip(f *testing.F) {
	f.Add(uint16(4), uint16(2), uint32(9), int32(7550))
	f.Add(uint16(0), uint16(0), uint32(0), int32(math.MinInt32))
	f.Fuzz(func(t *testing.T, node, group uint16, epoch uint32, scoreFP int32) {
		r := Reading{Node: NodeID(node), Group: GroupID(group), Epoch: Epoch(epoch), Value: FromFixed(FixedPoint(scoreFP))}
		rd, rest, err := DecodeReading(AppendReading(nil, r))
		if err != nil || len(rest) != 0 {
			t.Fatalf("reading decode: err=%v rest=%d", err, len(rest))
		}
		if rd != r {
			t.Fatalf("reading round-trip: %+v -> %+v", r, rd)
		}
		a := Answer{Group: GroupID(group), Score: FromFixed(FixedPoint(scoreFP))}
		ad, rest, err := DecodeAnswer(AppendAnswer(nil, a))
		if err != nil || len(rest) != 0 {
			t.Fatalf("answer decode: err=%v rest=%d", err, len(rest))
		}
		if ad != a {
			t.Fatalf("answer round-trip: %+v -> %+v", a, ad)
		}
	})
}
