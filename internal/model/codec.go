package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire encoding. KSpot clients run on motes whose radio stack (TinyOS
// TOS_Msg) carries small fixed payloads, so every record type that crosses
// the air has a compact, fixed-size binary encoding. The simulator charges
// energy per encoded byte, which is why these sizes are load-bearing: they
// are the quantities the System Panel reports.
//
// All integers are little-endian, matching the ATmega128L on the MICA2.

// Encoded record sizes in bytes.
const (
	// PartialWireSize: group(2) + sum fixed-point(4) + count(2) + min(4) + max(4).
	PartialWireSize = 16
	// AnswerWireSize: group(2) + score fixed-point(4).
	AnswerWireSize = 6
	// ReadingWireSize: node(2) + group(2) + epoch(4) + value(4).
	ReadingWireSize = 12
	// GroupIDWireSize: bare group id, used by TJA's L_sink id lists.
	GroupIDWireSize = 2
	// ScoredItemWireSize: item(2) + sum(4) + coverage(2) + thrsum(4), the
	// TJA hierarchical-join record.
	ScoredItemWireSize = 12
)

var errShortBuffer = errors.New("model: buffer too short")

// AppendPartial appends the wire form of p to dst and returns the result.
// Counts saturate at 65535 — a single subtree never exceeds that in any
// deployment the paper contemplates, and tests assert we notice if it does.
func AppendPartial(dst []byte, p Partial) []byte {
	var buf [PartialWireSize]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(p.Group))
	sum := p.SumFP
	switch {
	case sum > math.MaxInt32:
		sum = math.MaxInt32
	case sum < math.MinInt32:
		sum = math.MinInt32
	}
	binary.LittleEndian.PutUint32(buf[2:], uint32(int32(sum)))
	count := p.Count
	if count > 0xFFFF {
		count = 0xFFFF
	}
	binary.LittleEndian.PutUint16(buf[6:], uint16(count))
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.MinFP))
	binary.LittleEndian.PutUint32(buf[12:], uint32(p.MaxFP))
	return append(dst, buf[:]...)
}

// DecodePartial decodes one partial from the front of b.
func DecodePartial(b []byte) (Partial, []byte, error) {
	if len(b) < PartialWireSize {
		return Partial{}, b, errShortBuffer
	}
	p := Partial{
		Group: GroupID(binary.LittleEndian.Uint16(b[0:])),
		SumFP: int64(int32(binary.LittleEndian.Uint32(b[2:]))),
		Count: uint32(binary.LittleEndian.Uint16(b[6:])),
		MinFP: FixedPoint(binary.LittleEndian.Uint32(b[8:])),
		MaxFP: FixedPoint(binary.LittleEndian.Uint32(b[12:])),
	}
	return p, b[PartialWireSize:], nil
}

// AppendAnswer appends the wire form of a ranked answer.
func AppendAnswer(dst []byte, a Answer) []byte {
	var buf [AnswerWireSize]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(a.Group))
	binary.LittleEndian.PutUint32(buf[2:], uint32(ToFixed(a.Score)))
	return append(dst, buf[:]...)
}

// DecodeAnswer decodes one answer from the front of b.
func DecodeAnswer(b []byte) (Answer, []byte, error) {
	if len(b) < AnswerWireSize {
		return Answer{}, b, errShortBuffer
	}
	a := Answer{
		Group: GroupID(binary.LittleEndian.Uint16(b[0:])),
		Score: FromFixed(FixedPoint(binary.LittleEndian.Uint32(b[2:]))),
	}
	return a, b[AnswerWireSize:], nil
}

// AppendReading appends the wire form of a raw reading (used by the
// centralized baseline, which ships unaggregated tuples).
func AppendReading(dst []byte, r Reading) []byte {
	var buf [ReadingWireSize]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(r.Node))
	binary.LittleEndian.PutUint16(buf[2:], uint16(r.Group))
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Epoch))
	binary.LittleEndian.PutUint32(buf[8:], uint32(ToFixed(r.Value)))
	return append(dst, buf[:]...)
}

// DecodeReading decodes one reading from the front of b.
func DecodeReading(b []byte) (Reading, []byte, error) {
	if len(b) < ReadingWireSize {
		return Reading{}, b, errShortBuffer
	}
	r := Reading{
		Node:  NodeID(binary.LittleEndian.Uint16(b[0:])),
		Group: GroupID(binary.LittleEndian.Uint16(b[2:])),
		Epoch: Epoch(binary.LittleEndian.Uint32(b[4:])),
		Value: FromFixed(FixedPoint(binary.LittleEndian.Uint32(b[8:]))),
	}
	return r, b[ReadingWireSize:], nil
}

// AppendView appends the wire form of a view to dst — all partials, sorted
// by group for determinism — and returns the result. With enough capacity in
// dst it allocates nothing; the transports reuse one buffer per epoch sweep.
func AppendView(dst []byte, v *View) []byte {
	for _, p := range v.sortedPartials() {
		dst = AppendPartial(dst, p)
	}
	return dst
}

// EncodeView encodes all partials of a view, sorted by group for determinism.
func EncodeView(v *View) []byte {
	return AppendView(make([]byte, 0, v.Len()*PartialWireSize), v)
}

// DecodeViewInto resets v and decodes a concatenation of partials into it,
// reusing v's storage. This is the allocation-free counterpart of DecodeView.
func DecodeViewInto(v *View, b []byte) error {
	if len(b)%PartialWireSize != 0 {
		return fmt.Errorf("model: view payload length %d not a multiple of %d", len(b), PartialWireSize)
	}
	v.Reset()
	for len(b) > 0 {
		p, rest, err := DecodePartial(b)
		if err != nil {
			return err
		}
		v.AddPartial(p)
		b = rest
	}
	return nil
}

// DecodeView decodes a concatenation of partials into a fresh view.
func DecodeView(b []byte) (*View, error) {
	v := NewView()
	if err := DecodeViewInto(v, b); err != nil {
		return nil, err
	}
	return v, nil
}

// ViewWireSize reports the encoded size of a view without encoding it.
func ViewWireSize(v *View) int { return v.Len() * PartialWireSize }
