// Package runtime is the live two-tier deployment of the paper's §II: the
// KSpot client software runs as one goroutine per sensor node and the
// KSpot server drives epochs at the sink. Since the engine refactor this
// package holds no protocol logic of its own — the γ-descriptor pruning,
// upper-bound math and bound-tightening loop live once, in
// internal/topk/mint, and run here unchanged on the concurrent substrate
// (internal/engine.Live). What remains is deployment plumbing: building
// the substrate over a placement, the epoch clock, and access to traffic
// and buffered windows.
//
// The deterministic simulator (internal/sim + internal/topk) is where the
// benchmarks run; this package is the same protocol deployed as an actual
// concurrent system — it is what cmd/kspotd and the examples use, and its
// tests (plus the engine equivalence tests) run under -race.
package runtime

import (
	"context"

	"kspot/internal/engine"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topk"
	"kspot/internal/topk/mint"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// Traffic aggregates the deployment's radio accounting.
type Traffic struct {
	Messages int64
	TxBytes  int64
}

// Result is one epoch's outcome at the server.
type Result struct {
	Epoch   model.Epoch
	Answers []model.Answer
	Rounds  int
}

// Server is the KSpot server: the base station attached to the sink. It
// owns the shared MINT operator and the epoch clock.
type Server struct {
	live *engine.Live
	src  trace.Source
	op   *mint.Operator
}

// Deployment wires the live substrate and the server together.
type Deployment struct {
	Server *Server
	live   *engine.Live
}

// New builds a live deployment over a placement: disk links, BFS tree, one
// goroutine per client once Start is called.
func New(p *topo.Placement, radius float64, src trace.Source, q topk.SnapshotQuery, window int) (*Deployment, error) {
	net, err := sim.New(p, radius, sim.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return fromNetwork(net, src, q, window)
}

// FromTree builds a deployment over an explicit routing tree.
func FromTree(p *topo.Placement, tree *topo.Tree, src trace.Source, q topk.SnapshotQuery, window int) (*Deployment, error) {
	links := topo.NewLinks()
	for child, parent := range tree.Parent {
		links.Connect(child, parent)
	}
	return fromNetwork(sim.FromTree(p, links, tree, sim.DefaultOptions()), src, q, window)
}

func fromNetwork(net *sim.Network, src trace.Source, q topk.SnapshotQuery, window int) (*Deployment, error) {
	if window < 1 {
		window = 1
	}
	live := engine.NewLive(net, engine.LiveOptions{Window: window})
	op := mint.New()
	if err := op.Attach(live, q); err != nil {
		return nil, err
	}
	return &Deployment{
		Server: &Server{live: live, src: src, op: op},
		live:   live,
	}, nil
}

// Start launches the client goroutines.
func (d *Deployment) Start(ctx context.Context) { d.live.Start(ctx) }

// Stop terminates every client goroutine and waits for them to exit.
func (d *Deployment) Stop() { d.live.Stop() }

// Traffic reports the accumulated radio accounting.
func (d *Deployment) Traffic() Traffic {
	s := d.live.Snap()
	return Traffic{Messages: int64(s.Messages), TxBytes: int64(s.TxBytes)}
}

// Windows exposes each client's buffered history (for historic queries at
// the server side).
func (d *Deployment) Windows() map[model.NodeID][]model.Value {
	return d.live.Windows()
}

// RunEpoch executes one epoch on the live substrate: sense, beacon down,
// pruned views up, recovery rounds as needed — all via the shared MINT
// operator — and returns the server's fresh Top-K.
func (s *Server) RunEpoch(e model.Epoch) Result {
	readings := engine.SenseEpoch(s.live, s.src, e)
	answers, err := s.op.Epoch(e, readings)
	if err != nil {
		// MINT's Epoch only fails on a malformed query, which Attach
		// already validated; surface a protocol bug loudly.
		panic("runtime: " + err.Error())
	}
	rounds := 0
	if n := len(s.op.Rounds); n > 0 {
		rounds = s.op.Rounds[n-1]
	}
	return Result{Epoch: e, Answers: answers, Rounds: rounds}
}

// Gamma exposes the installed γ bound (for panels and tests).
func (s *Server) Gamma() model.Value { return s.op.Gamma() }
