// Package runtime is the live two-tier deployment of the paper's §II: one
// goroutine per KSpot client (the nesC mote software) and a KSpot server
// goroutine at the sink. Clients sample their sensor, buffer readings in a
// sliding window, merge their children's view updates, apply MINT's
// γ-descriptor pruning locally, and push updates to their parent over
// channels; the server materializes V0, serves the current Top-K, and
// floods new γ bounds when the ranking moves.
//
// The deterministic simulator (internal/sim + internal/topk) is where the
// benchmarks run; this package is the same protocol expressed as an actual
// concurrent system — it is what cmd/kspotd and the examples deploy, and
// its tests run under -race.
package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"kspot/internal/model"
	"kspot/internal/storage"
	"kspot/internal/topk"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// beacon is the downstream control message: start a round of an epoch with
// the given γ bound. Relayed parent→children like a TinyOS flood.
type beacon struct {
	epoch model.Epoch
	round int
	bound model.Value
	stop  bool
}

// update is the upstream data message: a (possibly empty) pruned view.
// Empty views cross the channel to keep the rounds in lock-step, but do
// not count as radio traffic — a silent mote sends nothing on air.
type update struct {
	from model.NodeID
	view *model.View
}

// Traffic aggregates the deployment's radio accounting.
type Traffic struct {
	Messages int64 // non-empty view updates + beacon hops
	TxBytes  int64
}

// Client is one sensor mote: the KSpot client software.
type Client struct {
	id        model.NodeID
	group     model.GroupID
	source    trace.Source
	query     topk.SnapshotQuery
	groupSize map[model.GroupID]int

	parent   chan<- update
	children []<-chan update
	beaconIn chan beacon
	beaconTo []chan beacon

	window *storage.Window

	msgs    *int64
	txBytes *int64
}

// run is the client main loop.
func (c *Client) run(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	var reading model.Reading
	var lastEpoch model.Epoch = math.MaxUint32
	for {
		var b beacon
		select {
		case <-ctx.Done():
			return
		case b = <-c.beaconIn:
		}
		// Relay the beacon to children first (flood), counting each hop.
		for _, ch := range c.beaconTo {
			atomic.AddInt64(c.msgs, 1)
			atomic.AddInt64(c.txBytes, 10) // γ beacon wire size
			select {
			case <-ctx.Done():
				return
			case ch <- b:
			}
		}
		if b.stop {
			return
		}
		// Sample once per epoch, on the epoch's first round.
		if b.epoch != lastEpoch {
			v := model.Quantize(c.source.Sample(c.id, b.epoch))
			reading = model.Reading{Node: c.id, Group: c.group, Epoch: b.epoch, Value: v}
			lastEpoch = b.epoch
			// Window pushes can only fail on clock regression, which the
			// lock-step epochs rule out.
			if err := c.window.Push(b.epoch, v); err != nil {
				panic(fmt.Sprintf("runtime: client %d window: %v", c.id, err))
			}
		}
		// Merge own reading with children's updates.
		v := model.NewView()
		v.Add(reading)
		for _, ch := range c.children {
			select {
			case <-ctx.Done():
				return
			case u := <-ch:
				v.MergeView(u.view)
			}
		}
		out := pruneView(v, b.bound, c.query, c.groupSize)
		if out.Len() > 0 {
			atomic.AddInt64(c.msgs, 1)
			atomic.AddInt64(c.txBytes, int64(model.ViewWireSize(out)))
		}
		select {
		case <-ctx.Done():
			return
		case c.parent <- update{from: c.id, view: out}:
		}
	}
}

// pruneView is the client-side MINT pruning: complete groups below the
// bound are suppressed; incomplete partials are suppressed only when their
// γ-descriptor upper bound stays below it.
func pruneView(v *model.View, bound model.Value, q topk.SnapshotQuery, groupSize map[model.GroupID]int) *model.View {
	out := v.Clone()
	for _, g := range out.Groups() {
		p, _ := out.Get(g)
		if upperBound(p, q, groupSize) >= bound {
			continue
		}
		out.Remove(g)
	}
	return out
}

func upperBound(p model.Partial, q topk.SnapshotQuery, groupSize map[model.GroupID]int) model.Value {
	g := groupSize[p.Group]
	if int(p.Count) >= g {
		return model.Quantize(p.Eval(q.Agg))
	}
	if q.Range == nil {
		return model.Value(math.Inf(1))
	}
	missing := int64(g) - int64(p.Count)
	vmaxFP := int64(model.ToFixed(q.Range.Max))
	switch q.Agg {
	case model.AggAvg:
		return model.Quantize(model.Value(p.SumFP+missing*vmaxFP) / model.Value(g) / 100)
	case model.AggSum:
		return model.Quantize(model.Value(p.SumFP+missing*vmaxFP) / 100)
	case model.AggMin:
		return p.Min()
	case model.AggMax:
		return q.Range.Max
	case model.AggCount:
		return model.Value(g)
	default:
		return model.Value(math.Inf(1))
	}
}

// Result is one epoch's outcome at the server.
type Result struct {
	Epoch   model.Epoch
	Answers []model.Answer
	Rounds  int
}

// Server is the KSpot server: the base station attached to the sink.
type Server struct {
	query     topk.SnapshotQuery
	groupSize map[model.GroupID]int
	nGroups   int

	beaconTo []chan beacon
	fromKids []<-chan update

	bound model.Value

	msgs    *int64
	txBytes *int64
}

// Deployment wires clients and server over a routing tree.
type Deployment struct {
	Server  *Server
	clients []*Client
	wg      sync.WaitGroup
	cancel  context.CancelFunc
	msgs    int64
	txBytes int64
}

// New builds a live deployment over a placement: disk links, BFS tree, one
// goroutine per client once Start is called.
func New(p *topo.Placement, radius float64, src trace.Source, q topk.SnapshotQuery, window int) (*Deployment, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	links := topo.DiskLinks(p, radius)
	tree, err := topo.BuildTree(p, links)
	if err != nil {
		return nil, err
	}
	return FromTree(p, tree, src, q, window)
}

// FromTree builds a deployment over an explicit routing tree.
func FromTree(p *topo.Placement, tree *topo.Tree, src trace.Source, q topk.SnapshotQuery, window int) (*Deployment, error) {
	if window < 1 {
		window = 1
	}
	d := &Deployment{}
	groupSize := p.GroupSize()

	// Channels: one beacon channel and one update channel per client.
	beaconChs := make(map[model.NodeID]chan beacon)
	updateChs := make(map[model.NodeID]chan update)
	for _, id := range p.SensorNodes() {
		beaconChs[id] = make(chan beacon, 4)
		updateChs[id] = make(chan update, 1)
	}

	for _, id := range p.SensorNodes() {
		win, err := storage.NewWindow(window)
		if err != nil {
			return nil, err
		}
		c := &Client{
			id:        id,
			group:     p.Groups[id],
			source:    src,
			query:     q,
			groupSize: groupSize,
			beaconIn:  beaconChs[id],
			window:    win,
			msgs:      &d.msgs,
			txBytes:   &d.txBytes,
		}
		c.parent = updateChs[id]
		for _, child := range tree.Children[id] {
			c.children = append(c.children, updateChs[child])
			c.beaconTo = append(c.beaconTo, beaconChs[child])
		}
		d.clients = append(d.clients, c)
	}

	s := &Server{
		query:     q,
		groupSize: groupSize,
		nGroups:   len(p.GroupIDs()),
		bound:     topk.MinusInf(),
		msgs:      &d.msgs,
		txBytes:   &d.txBytes,
	}
	for _, child := range tree.Children[model.Sink] {
		s.beaconTo = append(s.beaconTo, beaconChs[child])
		s.fromKids = append(s.fromKids, updateChs[child])
	}
	d.Server = s
	return d, nil
}

// Start launches the client goroutines.
func (d *Deployment) Start(ctx context.Context) {
	ctx, d.cancel = context.WithCancel(ctx)
	for _, c := range d.clients {
		d.wg.Add(1)
		go c.run(ctx, &d.wg)
	}
}

// Stop floods a stop beacon and waits for every client to exit.
func (d *Deployment) Stop() {
	done := make(chan struct{})
	go func() {
		d.Server.flood(beacon{stop: true})
		// Drain any in-flight updates so clients blocked on a full parent
		// channel can reach the stop beacon.
		for _, ch := range d.Server.fromKids {
			select {
			case <-ch:
			default:
			}
		}
		close(done)
	}()
	<-done
	if d.cancel != nil {
		d.cancel()
	}
	d.wg.Wait()
}

// Traffic reports the accumulated radio accounting.
func (d *Deployment) Traffic() Traffic {
	return Traffic{Messages: atomic.LoadInt64(&d.msgs), TxBytes: atomic.LoadInt64(&d.txBytes)}
}

// Windows exposes each client's buffered history (for historic queries at
// the server side).
func (d *Deployment) Windows() map[model.NodeID][]model.Value {
	out := make(map[model.NodeID][]model.Value, len(d.clients))
	for _, c := range d.clients {
		out[c.id] = c.window.Series()
	}
	return out
}

// flood sends a beacon to the server's direct children (clients relay it
// further down themselves).
func (s *Server) flood(b beacon) {
	for _, ch := range s.beaconTo {
		atomic.AddInt64(s.msgs, 1)
		atomic.AddInt64(s.txBytes, 10)
		ch <- b
	}
}

// RunEpoch executes one epoch: beacon down, updates up, recovery rounds as
// needed; returns the server's fresh Top-K.
func (s *Server) RunEpoch(e model.Epoch) Result {
	bound := s.bound
	vSink := model.NewView()
	var answers []model.Answer
	rounds := 0
	for {
		rounds++
		s.flood(beacon{epoch: e, round: rounds, bound: bound})
		fresh := model.NewView()
		for _, ch := range s.fromKids {
			u := <-ch
			fresh.MergeView(u.view)
		}
		for _, g := range fresh.Groups() {
			vSink.Remove(g)
			p, _ := fresh.Get(g)
			vSink.AddPartial(p)
		}
		completeView := model.NewView()
		for _, g := range vSink.Groups() {
			p, _ := vSink.Get(g)
			if int(p.Count) >= s.groupSize[p.Group] {
				completeView.AddPartial(p)
			}
		}
		answers = completeView.TopK(s.query.Agg, s.query.K)
		kth := model.KthScore(answers, s.query.K)
		if kth >= bound || rounds >= 4 {
			s.bound = kth - s.margin()
			if s.bound > bound && rounds == 1 {
				// Bound tightening takes effect next epoch (no extra
				// flood needed: the next epoch's beacon carries it).
			}
			break
		}
		bound = kth - s.margin()
	}
	return Result{Epoch: e, Answers: answers, Rounds: rounds}
}

func (s *Server) margin() model.Value {
	if s.query.Range == nil {
		return 0
	}
	return (s.query.Range.Max - s.query.Range.Min) * 0.025
}
