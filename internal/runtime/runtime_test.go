package runtime

import (
	"context"
	"testing"
	"time"

	"kspot/internal/model"
	"kspot/internal/topk"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

func fig1Deployment(t *testing.T, k int, window int) *Deployment {
	t.Helper()
	p := trace.Figure1Placement()
	tree := trace.Figure1Tree()
	q := topk.SnapshotQuery{K: k, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	d, err := FromTree(p, tree, trace.Figure1Source(), q, window)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func exactFor(p *topo.Placement, src trace.Source, e model.Epoch, q topk.SnapshotQuery) []model.Answer {
	readings := map[model.NodeID]model.Reading{}
	for _, id := range p.SensorNodes() {
		readings[id] = model.Reading{Node: id, Group: p.Groups[id], Epoch: e, Value: model.Quantize(src.Sample(id, e))}
	}
	return topk.ExactSnapshot(readings, q)
}

func TestLiveFigure1(t *testing.T) {
	d := fig1Deployment(t, 1, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d.Start(ctx)
	defer d.Stop()
	for e := model.Epoch(0); e < 5; e++ {
		res := d.Server.RunEpoch(e)
		if len(res.Answers) != 1 || res.Answers[0].Group != trace.Fig1RoomC || res.Answers[0].Score != 75 {
			t.Fatalf("epoch %d: answers = %v, want (C,75)", e, res.Answers)
		}
	}
}

func TestLiveMatchesOracle(t *testing.T) {
	p := topo.Rooms(6, 3, 12, 4)
	src := trace.NewRoomActivity(9, p.Groups, 6)
	src.Period = 5
	q := topk.SnapshotQuery{K: 2, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	d, err := New(p, 30, src, q, 16)
	if err != nil {
		t.Skipf("topology: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d.Start(ctx)
	defer d.Stop()
	for e := model.Epoch(0); e < 30; e++ {
		res := d.Server.RunEpoch(e)
		want := exactFor(p, src, e, q)
		if !model.EqualAnswers(res.Answers, want) {
			t.Fatalf("epoch %d: live=%v exact=%v", e, res.Answers, want)
		}
		if res.Rounds > 4 {
			t.Fatalf("epoch %d took %d rounds", e, res.Rounds)
		}
	}
}

func TestLiveTrafficAccounting(t *testing.T) {
	d := fig1Deployment(t, 1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d.Start(ctx)
	defer d.Stop()
	d.Server.RunEpoch(0)
	tr0 := d.Traffic()
	if tr0.Messages == 0 || tr0.TxBytes == 0 {
		t.Fatal("no traffic accounted in creation epoch")
	}
	d.Server.RunEpoch(1)
	d.Server.RunEpoch(2)
	tr2 := d.Traffic()
	// Steady state epochs on a constant workload must be cheaper than the
	// creation epoch (suppression working).
	perEpoch := float64(tr2.TxBytes-tr0.TxBytes) / 2
	if perEpoch >= float64(tr0.TxBytes) {
		t.Errorf("steady epoch bytes %.0f not below creation %d", perEpoch, tr0.TxBytes)
	}
}

func TestLiveWindowsBuffer(t *testing.T) {
	d := fig1Deployment(t, 1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	d.Start(ctx)
	defer d.Stop()
	for e := model.Epoch(0); e < 6; e++ {
		d.Server.RunEpoch(e)
	}
	wins := d.Windows()
	if len(wins) != 9 {
		t.Fatalf("windows for %d clients, want 9", len(wins))
	}
	for id, series := range wins {
		if len(series) != 4 {
			t.Fatalf("client %d window len = %d, want 4 (capacity)", id, len(series))
		}
		// Figure-1 fixture is constant, so every buffered value equals the
		// node's fixed reading.
		want := trace.Figure1Values()[id]
		for _, v := range series {
			if v != want {
				t.Fatalf("client %d buffered %v, want %v", id, v, want)
			}
		}
	}
}

func TestLiveHistoricOverWindows(t *testing.T) {
	p := topo.Rooms(4, 2, 12, 4)
	src := trace.NewDiurnal(4)
	q := topk.SnapshotQuery{K: 1, Agg: model.AggAvg, Range: &topk.ValueRange{Min: 0, Max: 100}}
	d, err := New(p, 30, src, q, 8)
	if err != nil {
		t.Skipf("topology: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d.Start(ctx)
	defer d.Stop()
	for e := model.Epoch(0); e < 8; e++ {
		d.Server.RunEpoch(e)
	}
	hq := topk.HistoricQuery{K: 3, Agg: model.AggAvg, Window: 8}
	data := topk.HistoricData(d.Windows())
	got := topk.ExactHistoric(data, hq)
	if len(got) != 3 {
		t.Fatalf("historic over live windows = %v", got)
	}
}

func TestStopTerminates(t *testing.T) {
	d := fig1Deployment(t, 1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d.Start(ctx)
	d.Server.RunEpoch(0)
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate the deployment")
	}
}

func TestNewValidatesQuery(t *testing.T) {
	p := trace.Figure1Placement()
	if _, err := New(p, 8, trace.Figure1Source(), topk.SnapshotQuery{K: 0}, 4); err == nil {
		t.Fatal("K=0 accepted")
	}
}
