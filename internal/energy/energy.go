// Package energy models the power budget of a MICA2-class sensor node.
//
// The paper's System Panel reports "savings in energy and messages"; those
// savings are a linear function of radio traffic, because on a MICA2 the
// CC1000 radio dominates the power draw (the ATmega128L CPU and the MTS310
// sensing board are an order of magnitude cheaper per epoch). This package
// provides that linear model with MICA2-derived defaults, per-node budgets
// and the network-lifetime metric used by experiment E4.
package energy

import (
	"fmt"
	"math"
	"sort"
)

// Model is a linear radio + fixed per-epoch energy model. All costs are in
// microjoules (µJ).
type Model struct {
	// TxPerByte is the cost of transmitting one byte.
	TxPerByte float64
	// RxPerByte is the cost of receiving one byte.
	RxPerByte float64
	// TxPerPacket is the fixed per-packet transmit overhead (preamble,
	// synchronization, MAC backoff) independent of payload size.
	TxPerPacket float64
	// RxPerPacket is the fixed per-packet receive overhead.
	RxPerPacket float64
	// SenseCost is the per-sample sensing cost (MTS310 acoustic channel).
	SenseCost float64
	// IdlePerEpoch is the per-epoch baseline (CPU active slice + radio
	// wake-up for the TDMA listen window).
	IdlePerEpoch float64
}

// MICA2 returns the default model. Derivation, at 3 V battery voltage and a
// 38.4 kbit/s CC1000 (the figures the MICA2 datasheet gives and the values
// used throughout the TinyDB/TAG literature):
//
//	TX draw 27 mA  -> 81 mW  -> 81e3 µW * 8/38400 s/byte ≈ 16.9 µJ/byte
//	RX draw 10 mA  -> 30 mW  ->                           ≈  6.3 µJ/byte
//
// The per-packet overheads cover the B-MAC preamble and TOS_Msg framing; the
// sensing and idle numbers are small but non-zero so that "send nothing"
// still costs something, as it does on hardware.
func MICA2() Model {
	return Model{
		TxPerByte:    16.9,
		RxPerByte:    6.3,
		TxPerPacket:  280, // ~16-byte effective preamble+sync at TX rates
		RxPerPacket:  120,
		SenseCost:    15,
		IdlePerEpoch: 45,
	}
}

// TxCost returns the energy to transmit one packet with the given number of
// on-air bytes (header + payload).
func (m Model) TxCost(bytes int) float64 {
	return m.TxPerPacket + m.TxPerByte*float64(bytes)
}

// RxCost returns the energy to receive one packet of the given size.
func (m Model) RxCost(bytes int) float64 {
	return m.RxPerPacket + m.RxPerByte*float64(bytes)
}

// Budget tracks one node's cumulative consumption against an initial
// capacity, in µJ. The zero Budget has infinite capacity.
type Budget struct {
	Capacity float64 // 0 means unlimited
	Used     float64
}

// NewBudget returns a budget with the given capacity in joules. Two AA
// batteries hold roughly 2x 1.5 V * 2000 mAh ≈ 21.6 kJ; WSN papers usually
// budget a fraction of that for the radio. Callers pass joules; internal
// accounting is µJ.
func NewBudget(joules float64) *Budget {
	return &Budget{Capacity: joules * 1e6}
}

// Spend consumes energy. It returns false when the budget was already
// exhausted before this spend (the node is dead and should not have acted).
func (b *Budget) Spend(microjoules float64) bool {
	if b.Dead() {
		return false
	}
	b.Used += microjoules
	return true
}

// Dead reports whether the budget is exhausted.
func (b *Budget) Dead() bool {
	return b.Capacity > 0 && b.Used >= b.Capacity
}

// Remaining returns the remaining energy in µJ (infinite capacity reports
// +Inf).
func (b *Budget) Remaining() float64 {
	if b.Capacity <= 0 {
		return math.Inf(1)
	}
	if b.Used >= b.Capacity {
		return 0
	}
	return b.Capacity - b.Used
}

// Ledger aggregates per-node energy consumption for a whole network run.
// The System Panel reads totals and distributions from here.
type Ledger struct {
	perNode map[int]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{perNode: make(map[int]float64)} }

// Charge adds consumption to a node's account.
func (l *Ledger) Charge(node int, microjoules float64) {
	l.perNode[node] += microjoules
}

// Node returns one node's total consumption in µJ.
func (l *Ledger) Node(node int) float64 { return l.perNode[node] }

// Set overwrites a node's account — restoring a checkpointed or migrated
// shard resumes the exact partial sum the source accumulated, so later
// charges extend it with the identical float operations.
func (l *Ledger) Set(node int, microjoules float64) {
	l.perNode[node] = microjoules
}

// Total returns the network-wide consumption in µJ. Summation runs in
// node order so the floating-point result is identical across runs (map
// iteration order would perturb the last ulp, which the fault layer's
// determinism tests compare).
func (l *Ledger) Total() float64 {
	var t float64
	for _, id := range l.Nodes() {
		t += l.perNode[id]
	}
	return t
}

// Max returns the highest per-node consumption — the hot-spot metric that
// determines network lifetime under a uniform initial budget.
func (l *Ledger) Max() float64 {
	var m float64
	for _, v := range l.perNode {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average per-node consumption (0 for an empty ledger).
func (l *Ledger) Mean() float64 {
	if len(l.perNode) == 0 {
		return 0
	}
	return l.Total() / float64(len(l.perNode))
}

// Nodes returns the node ids present, sorted.
func (l *Ledger) Nodes() []int {
	ids := make([]int, 0, len(l.perNode))
	for id := range l.perNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// LifetimeEpochs estimates how many epochs the network survives until the
// first node dies, given each node's measured per-epoch consumption over the
// run and a uniform initial budget in joules. It divides budget by the
// hottest node's per-epoch draw. Returns +Inf when nothing was consumed.
func (l *Ledger) LifetimeEpochs(budgetJoules float64, epochsMeasured int) float64 {
	if epochsMeasured <= 0 {
		return math.Inf(1)
	}
	perEpochMax := l.Max() / float64(epochsMeasured)
	if perEpochMax <= 0 {
		return math.Inf(1)
	}
	return budgetJoules * 1e6 / perEpochMax
}

// String summarizes the ledger for the System Panel.
func (l *Ledger) String() string {
	return fmt.Sprintf("energy{total=%.1fmJ max=%.1fmJ mean=%.1fmJ nodes=%d}",
		l.Total()/1000, l.Max()/1000, l.Mean()/1000, len(l.perNode))
}
