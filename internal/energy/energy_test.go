package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMICA2Sanity(t *testing.T) {
	m := MICA2()
	if m.TxPerByte <= m.RxPerByte {
		t.Error("transmitting must cost more per byte than receiving on a CC1000")
	}
	if m.TxPerPacket <= 0 || m.RxPerPacket <= 0 {
		t.Error("per-packet overheads must be positive")
	}
}

func TestTxRxCostLinear(t *testing.T) {
	m := MICA2()
	base := m.TxCost(0)
	if got := m.TxCost(10) - base; math.Abs(got-10*m.TxPerByte) > 1e-9 {
		t.Errorf("TxCost slope = %v, want %v", got/10, m.TxPerByte)
	}
	if m.RxCost(36) <= m.RxCost(0) {
		t.Error("RxCost not increasing with size")
	}
}

func TestBudgetSpendAndDeath(t *testing.T) {
	b := NewBudget(1e-6) // 1 µJ capacity
	if b.Dead() {
		t.Fatal("fresh budget dead")
	}
	if !b.Spend(0.5) {
		t.Fatal("spend within budget refused")
	}
	if b.Dead() {
		t.Fatal("dead after spending half")
	}
	if !b.Spend(1.0) {
		t.Fatal("the spend that kills the node must still be accepted")
	}
	if !b.Dead() {
		t.Fatal("budget should be exhausted")
	}
	if b.Spend(0.1) {
		t.Fatal("dead node accepted a spend")
	}
	if got := b.Remaining(); got != 0 {
		t.Errorf("Remaining = %v, want 0", got)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	var b Budget
	if !b.Spend(1e12) || b.Dead() {
		t.Error("zero-capacity budget must be unlimited")
	}
	if !math.IsInf(b.Remaining(), 1) {
		t.Errorf("Remaining = %v, want +Inf", b.Remaining())
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.Charge(1, 100)
	l.Charge(2, 300)
	l.Charge(1, 50)
	if got := l.Node(1); got != 150 {
		t.Errorf("Node(1) = %v", got)
	}
	if got := l.Total(); got != 450 {
		t.Errorf("Total = %v", got)
	}
	if got := l.Max(); got != 300 {
		t.Errorf("Max = %v", got)
	}
	if got := l.Mean(); got != 225 {
		t.Errorf("Mean = %v", got)
	}
	if nodes := l.Nodes(); len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 2 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestLedgerEmpty(t *testing.T) {
	l := NewLedger()
	if l.Mean() != 0 || l.Total() != 0 || l.Max() != 0 {
		t.Error("empty ledger must report zeros")
	}
	if !math.IsInf(l.LifetimeEpochs(10, 100), 1) {
		t.Error("no consumption means infinite lifetime")
	}
}

func TestLifetimeEpochs(t *testing.T) {
	l := NewLedger()
	l.Charge(1, 1000) // 1000 µJ over 10 epochs -> 100 µJ/epoch
	l.Charge(2, 500)
	got := l.LifetimeEpochs(1e-3, 10) // 1 mJ budget / 100 µJ per epoch = 10 epochs
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("LifetimeEpochs = %v, want 10", got)
	}
	if !math.IsInf(l.LifetimeEpochs(1, 0), 1) {
		t.Error("zero measured epochs must report +Inf")
	}
}

// Property: ledger totals are additive regardless of charge interleaving.
func TestLedgerAdditivityProperty(t *testing.T) {
	f := func(charges []uint16) bool {
		l := NewLedger()
		var want float64
		for i, c := range charges {
			l.Charge(i%5, float64(c))
			want += float64(c)
		}
		return math.Abs(l.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger()
	l.Charge(0, 1500)
	if s := l.String(); s == "" {
		t.Error("empty String()")
	}
}
