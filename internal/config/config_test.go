package config

import (
	"path/filepath"
	"strings"
	"testing"

	"kspot/internal/model"
	"kspot/internal/trace"
)

func validScenario() *Scenario {
	return &Scenario{
		Name:   "test",
		Radius: 10,
		Nodes: []Node{
			{ID: 1, X: 5, Y: 0, Cluster: 1},
			{ID: 2, X: 0, Y: 5, Cluster: 1},
		},
		Clusters: []Cluster{{ID: 1, Name: "Lab"}},
	}
}

func TestValidate(t *testing.T) {
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	mutations := []func(*Scenario){
		func(s *Scenario) { s.Name = "" },
		func(s *Scenario) { s.Radius = 0 },
		func(s *Scenario) { s.Nodes = nil },
		func(s *Scenario) { s.Nodes[0].ID = 0 },
		func(s *Scenario) { s.Nodes[1].ID = s.Nodes[0].ID },
		func(s *Scenario) { s.Nodes[0].Cluster = 9 },
		func(s *Scenario) { s.Clusters = append(s.Clusters, Cluster{ID: 1, Name: "dup"}) },
		func(s *Scenario) { s.Loss = 1.5 },
	}
	for i, mut := range mutations {
		s := validScenario()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := Figure3Scenario()
	path := filepath.Join(t.TempDir(), "demo.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Nodes) != len(s.Nodes) || len(got.Clusters) != 6 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDecodeBadJSON(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Decode([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestPlacementConversion(t *testing.T) {
	s := validScenario()
	p := s.Placement()
	if len(p.SensorNodes()) != 2 {
		t.Fatal("sensor count")
	}
	if p.Names[1] != "Lab" {
		t.Fatal("cluster name lost")
	}
	if p.Groups[1] != 1 {
		t.Fatal("grouping lost")
	}
}

func TestNetworkBuilds(t *testing.T) {
	net, err := validScenario().Network()
	if err != nil {
		t.Fatal(err)
	}
	if net.Tree.Size() != 3 {
		t.Fatalf("tree size = %d", net.Tree.Size())
	}
}

func TestNetworkAppliesRadio(t *testing.T) {
	s := validScenario()
	s.Payload = 64
	s.Loss = 0.1
	net, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	if net.Link.Config().Payload != 64 || net.Link.Config().LossRate != 0.1 {
		t.Fatalf("radio config = %+v", net.Link.Config())
	}
}

func TestSourceKinds(t *testing.T) {
	for _, kind := range []string{"", "rooms", "diurnal", "walk", "zipf", "uniform"} {
		s := validScenario()
		s.Workload = Workload{Kind: kind, Seed: 1}
		src, err := s.Source()
		if err != nil {
			t.Errorf("kind %q: %v", kind, err)
			continue
		}
		_ = src.Sample(1, 0)
	}
	s := validScenario()
	s.Workload = Workload{Kind: "martian"}
	if _, err := s.Source(); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFixtureWorkload(t *testing.T) {
	s := validScenario()
	s.Workload = Workload{Kind: "fixture", Fixture: map[string][]float64{"1": {42.5}}}
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Sample(1, 0); got != 42.5 {
		t.Fatalf("fixture sample = %v", got)
	}
	s.Workload.Fixture = map[string][]float64{"zebra": {1}}
	if _, err := s.Source(); err == nil {
		t.Fatal("bad fixture key accepted")
	}
}

func TestFigure1Scenario(t *testing.T) {
	s := Figure1Scenario()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range trace.Figure1Values() {
		if got := src.Sample(id, 0); got != want {
			t.Errorf("node %d = %v, want %v", id, got, want)
		}
	}
	if len(s.Clusters) != 4 {
		t.Errorf("clusters = %d", len(s.Clusters))
	}
}

func TestFigure3ScenarioShape(t *testing.T) {
	s := Figure3Scenario()
	if len(s.Nodes) != 14 || len(s.Clusters) != 6 {
		t.Fatalf("demo scenario shape: %d nodes, %d clusters", len(s.Nodes), len(s.Clusters))
	}
	names := map[string]bool{}
	for _, c := range s.Clusters {
		names[c.Name] = true
	}
	if !names["Auditorium"] || !names["Lobby"] {
		t.Errorf("cluster names = %v", names)
	}
}

func TestFromPlacementUnnamedClusters(t *testing.T) {
	p := trace.Figure1Placement()
	for g := range p.Names {
		delete(p.Names, g)
	}
	s := FromPlacement("anon", p, 8)
	if len(s.Clusters) != 4 {
		t.Fatalf("clusters = %d", len(s.Clusters))
	}
	if !strings.HasPrefix(s.Clusters[0].Name, "cluster ") {
		t.Errorf("fallback name = %q", s.Clusters[0].Name)
	}
}

func TestScenarioSinkPlacement(t *testing.T) {
	s := validScenario()
	s.SinkX, s.SinkY = 3, 4
	p := s.Placement()
	if pt := p.Positions[model.Sink]; pt.X != 3 || pt.Y != 4 {
		t.Fatalf("sink at %+v", pt)
	}
}
