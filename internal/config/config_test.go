package config

import (
	"path/filepath"
	"strings"
	"testing"

	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/trace"
)

func validScenario() *Scenario {
	return &Scenario{
		Name:   "test",
		Radius: 10,
		Nodes: []Node{
			{ID: 1, X: 5, Y: 0, Cluster: 1},
			{ID: 2, X: 0, Y: 5, Cluster: 1},
		},
		Clusters: []Cluster{{ID: 1, Name: "Lab"}},
	}
}

// TestValidate pins both that malformed scenarios are rejected and that
// the error names the offending field path — a hand-edited Configuration
// Panel file must point at its own mistake, not emit a bare message.
func TestValidate(t *testing.T) {
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Scenario)
		want string // substring the error must contain (the field path)
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "config: name: missing"},
		{"bad radius", func(s *Scenario) { s.Radius = 0 }, "config: radio_radius: must be positive"},
		{"no nodes", func(s *Scenario) { s.Nodes = nil }, "config: nodes: empty"},
		{"sink id", func(s *Scenario) { s.Nodes[0].ID = 0 }, "config: nodes[0].id: 0 is reserved"},
		{"dup node", func(s *Scenario) { s.Nodes[1].ID = s.Nodes[0].ID }, "config: nodes[1].id: duplicate node id 1"},
		{"unknown cluster", func(s *Scenario) { s.Nodes[1].Cluster = 9 }, "config: nodes[1].cluster: unknown cluster 9"},
		{"dup cluster", func(s *Scenario) { s.Clusters = append(s.Clusters, Cluster{ID: 1, Name: "dup"}) },
			"config: clusters[1].id: duplicate cluster id 1"},
		{"loss range", func(s *Scenario) { s.Loss = 1.5 }, "config: loss_rate: 1.5 outside [0,1)"},
		{"churn unknown node", func(s *Scenario) {
			s.Faults = &faults.Config{Churn: []faults.ChurnEvent{{Node: 77, Epoch: 1, Down: true}}}
		}, "config: faults.churn[0].node: unknown node 77"},
		{"faults inner", func(s *Scenario) { s.Faults = &faults.Config{Loss: 2} }, "config: faults: "},
		{"loss_rate with faults", func(s *Scenario) {
			s.Loss = 0.1
			s.Faults = &faults.Config{Loss: 0.1}
		}, "config: loss_rate: cannot be combined"},
		{"shards without clusters", func(s *Scenario) {
			s.Clusters = nil
			s.Shards = []Shard{{Clusters: []uint16{1}}}
		}, "config: shards: sharding needs a clusters list"},
		{"shards with parents", func(s *Scenario) {
			s.Parents = map[string]uint16{"1": 0}
			s.Shards = []Shard{{Clusters: []uint16{1}}}
		}, "config: shards: cannot be combined with a pinned parents tree"},
		{"empty shard", func(s *Scenario) {
			s.Shards = []Shard{{Clusters: []uint16{1}}, {}}
		}, "config: shards[1].clusters: empty"},
		{"shard unknown cluster", func(s *Scenario) {
			s.Shards = []Shard{{Clusters: []uint16{1}}, {Clusters: []uint16{9}}}
		}, "config: shards[1].clusters[0]: unknown cluster 9"},
		{"shard double assignment", func(s *Scenario) {
			s.Shards = []Shard{{Clusters: []uint16{1}}, {Clusters: []uint16{1}}}
		}, "config: shards[1].clusters[0]: cluster 1 already assigned to shards[0]"},
		{"shard without nodes", func(s *Scenario) {
			s.Clusters = append(s.Clusters, Cluster{ID: 2, Name: "Empty"})
			s.Shards = []Shard{{Clusters: []uint16{1}}, {Clusters: []uint16{2}}}
		}, "config: shards[1].clusters: no nodes in clusters [2]"},
		{"unassigned cluster", func(s *Scenario) {
			s.Clusters = append(s.Clusters, Cluster{ID: 2, Name: "Annex"})
			s.Nodes[1].Cluster = 2
			s.Shards = []Shard{{Clusters: []uint16{1}}}
		}, "config: shards: cluster 2 not assigned to any shard"},
	}
	for _, m := range mutations {
		s := validScenario()
		m.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not carry field path %q", m.name, err, m.want)
		}
	}
}

// shardedScenario is a 2-shard, 4-node, 2-cluster deployment.
func shardedScenario() *Scenario {
	return &Scenario{
		Name:   "fed-test",
		Radius: 10,
		Nodes: []Node{
			{ID: 1, X: 1, Y: 0, Cluster: 1},
			{ID: 2, X: 3, Y: 0, Cluster: 1},
			{ID: 3, X: 20, Y: 0, Cluster: 2},
			{ID: 4, X: 24, Y: 0, Cluster: 2},
		},
		Clusters: []Cluster{{ID: 1, Name: "West"}, {ID: 2, Name: "East"}},
		Shards:   []Shard{{Name: "west", Clusters: []uint16{1}}, {Clusters: []uint16{2}, FaultSeed: 99}},
	}
}

func TestShardScenarios(t *testing.T) {
	s := shardedScenario()
	subs, err := s.ShardScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("shards = %d, want 2", len(subs))
	}
	if subs[0].Name != "fed-test/west" || subs[1].Name != "fed-test/shard-1" {
		t.Errorf("shard names = %q, %q", subs[0].Name, subs[1].Name)
	}
	// Node ids are preserved globally unique, so one flat trace source
	// samples identical readings on the sharded deployment.
	if subs[0].Nodes[0].ID != 1 || subs[0].Nodes[1].ID != 2 || subs[1].Nodes[0].ID != 3 {
		t.Errorf("shard nodes renumbered: %+v / %+v", subs[0].Nodes, subs[1].Nodes)
	}
	// The shard's base station sits at its field's centroid.
	if subs[0].SinkX != 2 || subs[0].SinkY != 0 || subs[1].SinkX != 22 {
		t.Errorf("shard sinks at (%v,%v) and (%v,%v)", subs[0].SinkX, subs[0].SinkY, subs[1].SinkX, subs[1].SinkY)
	}
	for i, sub := range subs {
		if _, err := sub.Network(); err != nil {
			t.Errorf("shard %d does not deploy: %v", i, err)
		}
	}
	// Unsharded scenarios pass through as the single deployment.
	flat := validScenario()
	subs, err = flat.ShardScenarios()
	if err != nil || len(subs) != 1 || subs[0] != flat {
		t.Fatalf("flat ShardScenarios = %v, %v", subs, err)
	}
}

func TestShardFaults(t *testing.T) {
	s := shardedScenario()
	base := faults.Config{
		Seed: 7,
		Loss: 0.1,
		Churn: []faults.ChurnEvent{
			{Node: 1, Epoch: 2, Down: true},
			{Node: 4, Epoch: 3, Down: true},
		},
	}
	f0 := s.ShardFaults(base, 0)
	f1 := s.ShardFaults(base, 1)
	// Shard 0 keeps the deployment seed (an unsharded system replays the
	// same fault pattern); shard 1 pinned fault_seed 99.
	if f0.Seed != 7 {
		t.Errorf("shard 0 seed = %d, want base 7", f0.Seed)
	}
	if f1.Seed != 99 {
		t.Errorf("shard 1 seed = %d, want pinned 99", f1.Seed)
	}
	if f0.Loss != 0.1 || f1.Loss != 0.1 {
		t.Errorf("frame faults must apply to every shard: %v / %v", f0.Loss, f1.Loss)
	}
	// Churn is filtered to the shard's own nodes.
	if len(f0.Churn) != 1 || f0.Churn[0].Node != 1 {
		t.Errorf("shard 0 churn = %+v", f0.Churn)
	}
	if len(f1.Churn) != 1 || f1.Churn[0].Node != 4 {
		t.Errorf("shard 1 churn = %+v", f1.Churn)
	}
	// An unpinned non-zero shard derives a distinct seed.
	s.Shards[1].FaultSeed = 0
	if got := s.ShardFaults(base, 1).Seed; got == 7 {
		t.Error("shard 1 derived seed collides with the base seed")
	}
}

func TestAutoShard(t *testing.T) {
	s := Figure3Scenario() // 6 clusters
	if err := s.AutoShard(2); err != nil {
		t.Fatal(err)
	}
	if len(s.Shards) != 2 || len(s.Shards[0].Clusters) != 3 || len(s.Shards[1].Clusters) != 3 {
		t.Fatalf("auto-shard split = %+v", s.Shards)
	}
	if err := s.AutoShard(7); err == nil {
		t.Error("splitting 6 clusters into 7 shards accepted")
	}
	if err := s.AutoShard(1); err != nil || s.Shards != nil {
		t.Errorf("AutoShard(1) should clear the block: %v %+v", err, s.Shards)
	}
}

func TestScaleScenarioShards(t *testing.T) {
	s, err := ScaleScenarioShards(400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sharded() || len(s.Shards) != 4 {
		t.Fatalf("shards = %+v", s.Shards)
	}
	subs, err := s.ShardScenarios()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sub := range subs {
		total += len(sub.Nodes)
	}
	if total != 400 {
		t.Fatalf("shard node counts sum to %d, want 400", total)
	}
	// A split whose shard subfield is not radio-connected around its own
	// base station is rejected at generation time, not at deploy time.
	if _, err := ScaleScenarioShards(200, 4); err == nil {
		t.Error("disconnected 200/4 split accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := Figure3Scenario()
	path := filepath.Join(t.TempDir(), "demo.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Nodes) != len(s.Nodes) || len(got.Clusters) != 6 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDecodeBadJSON(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Decode([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestPlacementConversion(t *testing.T) {
	s := validScenario()
	p := s.Placement()
	if len(p.SensorNodes()) != 2 {
		t.Fatal("sensor count")
	}
	if p.Names[1] != "Lab" {
		t.Fatal("cluster name lost")
	}
	if p.Groups[1] != 1 {
		t.Fatal("grouping lost")
	}
}

func TestNetworkBuilds(t *testing.T) {
	net, err := validScenario().Network()
	if err != nil {
		t.Fatal(err)
	}
	if net.Tree.Size() != 3 {
		t.Fatalf("tree size = %d", net.Tree.Size())
	}
}

func TestNetworkAppliesRadio(t *testing.T) {
	s := validScenario()
	s.Payload = 64
	s.Loss = 0.1
	net, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	if net.Link.Config().Payload != 64 || net.Link.Config().LossRate != 0.1 {
		t.Fatalf("radio config = %+v", net.Link.Config())
	}
}

func TestSourceKinds(t *testing.T) {
	for _, kind := range []string{"", "rooms", "diurnal", "walk", "zipf", "uniform"} {
		s := validScenario()
		s.Workload = Workload{Kind: kind, Seed: 1}
		src, err := s.Source()
		if err != nil {
			t.Errorf("kind %q: %v", kind, err)
			continue
		}
		_ = src.Sample(1, 0)
	}
	s := validScenario()
	s.Workload = Workload{Kind: "martian"}
	if _, err := s.Source(); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFixtureWorkload(t *testing.T) {
	s := validScenario()
	s.Workload = Workload{Kind: "fixture", Fixture: map[string][]float64{"1": {42.5}}}
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Sample(1, 0); got != 42.5 {
		t.Fatalf("fixture sample = %v", got)
	}
	s.Workload.Fixture = map[string][]float64{"zebra": {1}}
	if _, err := s.Source(); err == nil {
		t.Fatal("bad fixture key accepted")
	}
}

func TestFigure1Scenario(t *testing.T) {
	s := Figure1Scenario()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range trace.Figure1Values() {
		if got := src.Sample(id, 0); got != want {
			t.Errorf("node %d = %v, want %v", id, got, want)
		}
	}
	if len(s.Clusters) != 4 {
		t.Errorf("clusters = %d", len(s.Clusters))
	}
}

func TestFigure3ScenarioShape(t *testing.T) {
	s := Figure3Scenario()
	if len(s.Nodes) != 14 || len(s.Clusters) != 6 {
		t.Fatalf("demo scenario shape: %d nodes, %d clusters", len(s.Nodes), len(s.Clusters))
	}
	names := map[string]bool{}
	for _, c := range s.Clusters {
		names[c.Name] = true
	}
	if !names["Auditorium"] || !names["Lobby"] {
		t.Errorf("cluster names = %v", names)
	}
}

func TestFromPlacementUnnamedClusters(t *testing.T) {
	p := trace.Figure1Placement()
	for g := range p.Names {
		delete(p.Names, g)
	}
	s := FromPlacement("anon", p, 8)
	if len(s.Clusters) != 4 {
		t.Fatalf("clusters = %d", len(s.Clusters))
	}
	if !strings.HasPrefix(s.Clusters[0].Name, "cluster ") {
		t.Errorf("fallback name = %q", s.Clusters[0].Name)
	}
}

func TestScenarioSinkPlacement(t *testing.T) {
	s := validScenario()
	s.SinkX, s.SinkY = 3, 4
	p := s.Placement()
	if pt := p.Positions[model.Sink]; pt.X != 3 || pt.Y != 4 {
		t.Fatalf("sink at %+v", pt)
	}
}
