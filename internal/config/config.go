// Package config reads and writes KSpot scenario files — the JSON artifact
// of the paper's Configuration Panel, which "enables the user to load a new
// scenario from a configuration file or to create a new scenario". A
// scenario declares the deployment (node positions), the clustering (which
// nodes share a physical region), radio parameters and the workload.
package config

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// Node declares one sensor's placement and cluster.
type Node struct {
	ID      uint16  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Cluster uint16  `json:"cluster"`
}

// Cluster names a physical region ("Auditorium", "Coffee Station 1").
type Cluster struct {
	ID   uint16 `json:"id"`
	Name string `json:"name"`
}

// Workload selects and parameterizes a trace source.
type Workload struct {
	// Kind: rooms | diurnal | walk | zipf | uniform | fixture.
	Kind string  `json:"kind"`
	Seed int64   `json:"seed"`
	Min  float64 `json:"min,omitempty"`
	Max  float64 `json:"max,omitempty"`
	// Period, for rooms: epochs between activity changes.
	Period uint32 `json:"period,omitempty"`
	// ActiveFrac, for rooms: fraction of rooms active at a time.
	ActiveFrac float64 `json:"active_frac,omitempty"`
	// Fixture values, keyed by node id, for kind=fixture.
	Fixture map[string][]float64 `json:"fixture,omitempty"`
}

// Scenario is a complete deployment description.
type Scenario struct {
	Name     string    `json:"name"`
	SinkX    float64   `json:"sink_x"`
	SinkY    float64   `json:"sink_y"`
	Radius   float64   `json:"radio_radius"`
	Loss     float64   `json:"loss_rate,omitempty"`
	Payload  int       `json:"payload_bytes,omitempty"`
	Budget   float64   `json:"budget_joules,omitempty"`
	Nodes    []Node    `json:"nodes"`
	Clusters []Cluster `json:"clusters"`
	Workload Workload  `json:"workload"`
	// Parents, when present, pins the routing tree explicitly (keyed by
	// node id, value = parent id) instead of deriving it from radio
	// connectivity — how the paper's Figure 1 draws its exact tree.
	Parents map[string]uint16 `json:"parents,omitempty"`
	// Faults, when present, declares the deployment's unreliable-world
	// environment: seeded deterministic link loss (Bernoulli,
	// distance-weighted or Gilbert-Elliott bursts), frame duplication and
	// delay, and scheduled node churn. Unlike the legacy loss_rate (an
	// rng stream whose draws depend on transmission order), a faults block
	// replays identically on the simulator and the live substrate. The
	// scenarios/lossy-*.json family exercises it; kspot.Open arms it.
	Faults *faults.Config `json:"faults,omitempty"`
}

// Validate checks structural consistency.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("config: scenario needs a name")
	}
	if s.Radius <= 0 {
		return fmt.Errorf("config: radio radius must be positive, got %v", s.Radius)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("config: scenario has no nodes")
	}
	clusters := make(map[uint16]bool, len(s.Clusters))
	for _, c := range s.Clusters {
		if clusters[c.ID] {
			return fmt.Errorf("config: duplicate cluster id %d", c.ID)
		}
		clusters[c.ID] = true
	}
	seen := make(map[uint16]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.ID == 0 {
			return fmt.Errorf("config: node id 0 is reserved for the sink")
		}
		if seen[n.ID] {
			return fmt.Errorf("config: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		if len(s.Clusters) > 0 && !clusters[n.Cluster] {
			return fmt.Errorf("config: node %d references unknown cluster %d", n.ID, n.Cluster)
		}
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("config: loss rate %v outside [0,1)", s.Loss)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("config: %w", err)
		}
		for _, ev := range s.Faults.Churn {
			if !seen[uint16(ev.Node)] {
				return fmt.Errorf("config: churn event references unknown node %d", ev.Node)
			}
		}
		if s.Faults.Enabled() && s.Loss > 0 {
			// The legacy rng stream's draws depend on transmission order
			// and would break the faults block's substrate-equivalence
			// guarantee (or be silently shadowed by a frame fault model).
			return fmt.Errorf("config: loss_rate and a faults block cannot be combined; use the faults block's loss instead")
		}
	}
	return nil
}

// Placement converts the scenario to a topo.Placement.
func (s *Scenario) Placement() *topo.Placement {
	p := topo.NewPlacement()
	p.Positions[model.Sink] = topo.Point{X: s.SinkX, Y: s.SinkY}
	for _, n := range s.Nodes {
		p.Positions[model.NodeID(n.ID)] = topo.Point{X: n.X, Y: n.Y}
		p.Groups[model.NodeID(n.ID)] = model.GroupID(n.Cluster)
	}
	for _, c := range s.Clusters {
		p.Names[model.GroupID(c.ID)] = c.Name
	}
	return p
}

// Network builds a simulated network from the scenario.
func (s *Scenario) Network() (*sim.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts := sim.DefaultOptions()
	opts.Radio.LossRate = s.Loss
	opts.Radio.Seed = s.Workload.Seed
	if s.Payload > 0 {
		opts.Radio.Payload = s.Payload
	}
	opts.BudgetJoules = s.Budget
	if len(s.Parents) > 0 {
		tree, links, err := s.pinnedTree()
		if err != nil {
			return nil, err
		}
		return sim.FromTree(s.Placement(), links, tree, opts), nil
	}
	return sim.New(s.Placement(), s.Radius, opts)
}

// Tree returns the scenario's routing tree: the pinned one when declared,
// otherwise the first-heard BFS tree over disk connectivity.
func (s *Scenario) Tree() (*topo.Tree, error) {
	if len(s.Parents) > 0 {
		tree, _, err := s.pinnedTree()
		return tree, err
	}
	p := s.Placement()
	return topo.BuildTree(p, topo.DiskLinks(p, s.Radius))
}

// pinnedTree materializes the explicit parent map.
func (s *Scenario) pinnedTree() (*topo.Tree, *topo.Links, error) {
	tree := &topo.Tree{
		Parent:   make(map[model.NodeID]model.NodeID),
		Children: make(map[model.NodeID][]model.NodeID),
		Depth:    make(map[model.NodeID]int),
		Root:     model.Sink,
	}
	links := topo.NewLinks()
	for key, parent := range s.Parents {
		var child uint16
		if _, err := fmt.Sscanf(key, "%d", &child); err != nil {
			return nil, nil, fmt.Errorf("config: parent key %q is not a node id", key)
		}
		tree.Parent[model.NodeID(child)] = model.NodeID(parent)
		tree.Children[model.NodeID(parent)] = append(tree.Children[model.NodeID(parent)], model.NodeID(child))
		links.Connect(model.NodeID(child), model.NodeID(parent))
	}
	for _, cs := range tree.Children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	// Fill depths by walking from the sink; unreachable nodes are an error.
	var fill func(n model.NodeID, d int)
	tree.Depth[model.Sink] = 0
	fill = func(n model.NodeID, d int) {
		tree.Depth[n] = d
		for _, c := range tree.Children[n] {
			fill(c, d+1)
		}
	}
	fill(model.Sink, 0)
	for _, n := range s.Nodes {
		if _, ok := tree.Depth[model.NodeID(n.ID)]; !ok {
			return nil, nil, fmt.Errorf("config: node %d not reachable through pinned parents", n.ID)
		}
	}
	if err := tree.Validate(); err != nil {
		return nil, nil, fmt.Errorf("config: pinned tree invalid: %w", err)
	}
	return tree, links, nil
}

// Source builds the scenario's trace source.
func (s *Scenario) Source() (trace.Source, error) {
	p := s.Placement()
	switch s.Workload.Kind {
	case "", "rooms":
		src := trace.NewRoomActivity(s.Workload.Seed, p.Groups, len(p.GroupIDs()))
		if s.Workload.Period > 0 {
			src.Period = model.Epoch(s.Workload.Period)
		}
		if s.Workload.ActiveFrac > 0 {
			src.ActiveFrac = s.Workload.ActiveFrac
		}
		return src, nil
	case "diurnal":
		return trace.NewDiurnal(s.Workload.Seed), nil
	case "walk":
		lo, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 100)
		return trace.NewRandomWalk(s.Workload.Seed, lo, hi), nil
	case "zipf":
		_, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 1000)
		return trace.NewZipf(s.Workload.Seed, p.Groups, 1.5, hi), nil
	case "uniform":
		lo, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 100)
		return &trace.Uniform{Seed: s.Workload.Seed, Min: lo, Max: hi}, nil
	case "fixture":
		vals := make(map[model.NodeID][]model.Value, len(s.Workload.Fixture))
		for k, vs := range s.Workload.Fixture {
			var id uint16
			if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
				return nil, fmt.Errorf("config: fixture key %q is not a node id", k)
			}
			mv := make([]model.Value, len(vs))
			for i, v := range vs {
				mv[i] = model.Value(v)
			}
			vals[model.NodeID(id)] = mv
		}
		return trace.NewFixture(vals), nil
	default:
		return nil, fmt.Errorf("config: unknown workload kind %q", s.Workload.Kind)
	}
}

func defRange(lo, hi, dlo, dhi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return dlo, dhi
	}
	return lo, hi
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Decode(data)
}

// Decode parses and validates scenario JSON.
func Decode(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: bad scenario JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FromPlacement captures an in-memory placement as a scenario (the
// Configuration Panel's "create a new scenario that can be stored in a
// configuration file").
func FromPlacement(name string, p *topo.Placement, radius float64) *Scenario {
	s := &Scenario{Name: name, Radius: radius}
	if pt, ok := p.Positions[model.Sink]; ok {
		s.SinkX, s.SinkY = pt.X, pt.Y
	}
	for _, id := range p.SensorNodes() {
		pt := p.Positions[id]
		s.Nodes = append(s.Nodes, Node{ID: uint16(id), X: pt.X, Y: pt.Y, Cluster: uint16(p.Groups[id])})
	}
	var gids []model.GroupID
	for g := range p.Names {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		s.Clusters = append(s.Clusters, Cluster{ID: uint16(g), Name: p.Names[g]})
	}
	if len(s.Clusters) == 0 {
		for _, g := range p.GroupIDs() {
			s.Clusters = append(s.Clusters, Cluster{ID: uint16(g), Name: fmt.Sprintf("cluster %d", g)})
		}
	}
	return s
}

// Figure3Scenario returns the paper's demo scenario as a ready-made config.
func Figure3Scenario() *Scenario {
	s := FromPlacement("icde09-demo", trace.Figure3Placement(), 15)
	s.Workload = Workload{Kind: "rooms", Seed: 42, Period: 10, ActiveFrac: 0.5}
	return s
}

// scalePerRoom is the sensors-per-room density of the scale-* scenario
// family.
const scalePerRoom = 20

// ScaleScenario deterministically generates the scale-<n> deployment: n
// sensors in rooms of 20 on a square building grid, the production-scale
// workload family of the benchmark trajectory (scenarios/scale-1000.json,
// scale-4000.json are its committed outputs — regenerate with
// `kspot-sim -gen-scale <n> -emit <file>`). n must be a positive multiple
// of 20. The generator is a pure function of n: positions derive from a
// seeded layout and are rounded to centimeters so the JSON stays compact
// and byte-stable across regenerations.
func ScaleScenario(n int) (*Scenario, error) {
	if n < scalePerRoom || n%scalePerRoom != 0 {
		return nil, fmt.Errorf("config: scale scenario size %d must be a positive multiple of %d", n, scalePerRoom)
	}
	rooms := n / scalePerRoom
	p := topo.Rooms(rooms, scalePerRoom, 12, int64(1009+n))
	for id, pt := range p.Positions {
		p.Positions[id] = topo.Point{
			X: math.Round(pt.X*100) / 100,
			Y: math.Round(pt.Y*100) / 100,
		}
	}
	s := FromPlacement(fmt.Sprintf("scale-%d", n), p, 15)
	s.Workload = Workload{Kind: "rooms", Seed: int64(n), Period: 10, ActiveFrac: 0.3}
	// A scale scenario must actually deploy: reject a layout whose routing
	// tree does not connect rather than shipping a dead file.
	if _, err := s.Network(); err != nil {
		return nil, fmt.Errorf("config: scale scenario %d does not deploy: %w", n, err)
	}
	return s, nil
}

// Figure1Scenario returns the paper's worked example with its exact values
// and its exact routing tree (s9 under s4 — the edge that trips the naive
// strategy).
func Figure1Scenario() *Scenario {
	p := trace.Figure1Placement()
	s := FromPlacement("figure-1", p, 8)
	fix := make(map[string][]float64, 9)
	for id, v := range trace.Figure1Values() {
		fix[fmt.Sprintf("%d", id)] = []float64{float64(v)}
	}
	s.Workload = Workload{Kind: "fixture", Fixture: fix}
	s.Parents = make(map[string]uint16)
	tree := trace.Figure1Tree()
	for child, parent := range tree.Parent {
		s.Parents[fmt.Sprintf("%d", child)] = uint16(parent)
	}
	return s
}
