// Package config reads and writes KSpot scenario files — the JSON artifact
// of the paper's Configuration Panel, which "enables the user to load a new
// scenario from a configuration file or to create a new scenario". A
// scenario declares the deployment (node positions), the clustering (which
// nodes share a physical region), radio parameters and the workload.
package config

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"kspot/internal/faults"
	"kspot/internal/model"
	"kspot/internal/sim"
	"kspot/internal/topo"
	"kspot/internal/trace"
)

// Node declares one sensor's placement and cluster.
type Node struct {
	ID      uint16  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Cluster uint16  `json:"cluster"`
}

// Cluster names a physical region ("Auditorium", "Coffee Station 1").
type Cluster struct {
	ID   uint16 `json:"id"`
	Name string `json:"name"`
}

// Workload selects and parameterizes a trace source.
type Workload struct {
	// Kind: rooms | diurnal | walk | zipf | uniform | fixture.
	Kind string  `json:"kind"`
	Seed int64   `json:"seed"`
	Min  float64 `json:"min,omitempty"`
	Max  float64 `json:"max,omitempty"`
	// Period, for rooms: epochs between activity changes.
	Period uint32 `json:"period,omitempty"`
	// ActiveFrac, for rooms: fraction of rooms active at a time.
	ActiveFrac float64 `json:"active_frac,omitempty"`
	// Fixture values, keyed by node id, for kind=fixture.
	Fixture map[string][]float64 `json:"fixture,omitempty"`
}

// Shard assigns a subset of the scenario's clusters to one federated
// shard network. A sharded deployment runs each shard as its own radio
// network — own base station, own routing tree, own link layer — and
// merges shard-local TOP-K views at a coordinator tier (see
// internal/topk/fed). Clusters are physical regions, so every cluster
// lives wholly inside one shard; the shards block must partition the
// cluster list exactly.
type Shard struct {
	// Name labels the shard in panels and stats (default "shard-<i>").
	Name string `json:"name,omitempty"`
	// Clusters lists the cluster ids deployed in this shard.
	Clusters []uint16 `json:"clusters"`
	// FaultSeed, when non-zero, pins this shard's fault-environment seed.
	// By default shard i derives its seed from the deployment seed (see
	// ShardFaultSeed) so shards fade independently under one armed config.
	FaultSeed int64 `json:"fault_seed,omitempty"`
}

// Scenario is a complete deployment description.
type Scenario struct {
	Name     string    `json:"name"`
	SinkX    float64   `json:"sink_x"`
	SinkY    float64   `json:"sink_y"`
	Radius   float64   `json:"radio_radius"`
	Loss     float64   `json:"loss_rate,omitempty"`
	Payload  int       `json:"payload_bytes,omitempty"`
	Budget   float64   `json:"budget_joules,omitempty"`
	Nodes    []Node    `json:"nodes"`
	Clusters []Cluster `json:"clusters"`
	Workload Workload  `json:"workload"`
	// Parents, when present, pins the routing tree explicitly (keyed by
	// node id, value = parent id) instead of deriving it from radio
	// connectivity — how the paper's Figure 1 draws its exact tree.
	Parents map[string]uint16 `json:"parents,omitempty"`
	// Faults, when present, declares the deployment's unreliable-world
	// environment: seeded deterministic link loss (Bernoulli,
	// distance-weighted or Gilbert-Elliott bursts), frame duplication and
	// delay, and scheduled node churn. Unlike the legacy loss_rate (an
	// rng stream whose draws depend on transmission order), a faults block
	// replays identically on the simulator and the live substrate. The
	// scenarios/lossy-*.json family exercises it; kspot.Open arms it.
	Faults *faults.Config `json:"faults,omitempty"`
	// Shards, when present, declares a federated deployment: the cluster
	// list is partitioned into shard networks that run the per-shard
	// operator independently and merge answers at a coordinator tier.
	// ShardScenarios materializes the per-shard sub-deployments.
	Shards []Shard `json:"shards,omitempty"`
}

// Validate checks structural consistency. Errors name the offending field
// path (e.g. "shards[1].clusters[0]: unknown cluster 9") so a hand-edited
// Configuration Panel file points at its own mistake.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("config: name: missing (scenario needs a name)")
	}
	if s.Radius <= 0 {
		return fmt.Errorf("config: radio_radius: must be positive, got %v", s.Radius)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("config: nodes: empty (scenario has no nodes)")
	}
	clusters := make(map[uint16]bool, len(s.Clusters))
	for i, c := range s.Clusters {
		if clusters[c.ID] {
			return fmt.Errorf("config: clusters[%d].id: duplicate cluster id %d", i, c.ID)
		}
		clusters[c.ID] = true
	}
	seen := make(map[uint16]bool, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.ID == 0 {
			return fmt.Errorf("config: nodes[%d].id: 0 is reserved for the sink", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("config: nodes[%d].id: duplicate node id %d", i, n.ID)
		}
		seen[n.ID] = true
		if len(s.Clusters) > 0 && !clusters[n.Cluster] {
			return fmt.Errorf("config: nodes[%d].cluster: unknown cluster %d", i, n.Cluster)
		}
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("config: loss_rate: %v outside [0,1)", s.Loss)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("config: faults: %w", err)
		}
		for i, ev := range s.Faults.Churn {
			if !seen[uint16(ev.Node)] {
				return fmt.Errorf("config: faults.churn[%d].node: unknown node %d", i, ev.Node)
			}
		}
		if s.Faults.Enabled() && s.Loss > 0 {
			// The legacy rng stream's draws depend on transmission order
			// and would break the faults block's substrate-equivalence
			// guarantee (or be silently shadowed by a frame fault model).
			return fmt.Errorf("config: loss_rate: cannot be combined with a faults block; use the faults block's loss instead")
		}
	}
	return s.validateShards(clusters)
}

// validateShards checks the federation block: the shards must partition
// the cluster list exactly (every cluster in exactly one shard), every
// shard must deploy at least one node, and a pinned routing tree cannot be
// split (its edges may cross shard boundaries).
func (s *Scenario) validateShards(clusters map[uint16]bool) error {
	if len(s.Shards) == 0 {
		return nil
	}
	if len(s.Clusters) == 0 {
		return fmt.Errorf("config: shards: sharding needs a clusters list to partition")
	}
	if len(s.Parents) > 0 {
		return fmt.Errorf("config: shards: cannot be combined with a pinned parents tree")
	}
	nodesPerCluster := make(map[uint16]int, len(s.Clusters))
	for _, n := range s.Nodes {
		nodesPerCluster[n.Cluster]++
	}
	owner := make(map[uint16]int, len(clusters))
	for i, sh := range s.Shards {
		if len(sh.Clusters) == 0 {
			return fmt.Errorf("config: shards[%d].clusters: empty", i)
		}
		nodes := 0
		for j, c := range sh.Clusters {
			if !clusters[c] {
				return fmt.Errorf("config: shards[%d].clusters[%d]: unknown cluster %d", i, j, c)
			}
			if prev, taken := owner[c]; taken {
				return fmt.Errorf("config: shards[%d].clusters[%d]: cluster %d already assigned to shards[%d]", i, j, c, prev)
			}
			owner[c] = i
			nodes += nodesPerCluster[c]
		}
		if nodes == 0 {
			return fmt.Errorf("config: shards[%d].clusters: no nodes in clusters %v", i, sh.Clusters)
		}
	}
	for _, c := range s.Clusters {
		if _, ok := owner[c.ID]; !ok {
			return fmt.Errorf("config: shards: cluster %d not assigned to any shard (shards must partition the cluster list)", c.ID)
		}
	}
	return nil
}

// Placement converts the scenario to a topo.Placement.
func (s *Scenario) Placement() *topo.Placement {
	p := topo.NewPlacement()
	p.Positions[model.Sink] = topo.Point{X: s.SinkX, Y: s.SinkY}
	for _, n := range s.Nodes {
		p.Positions[model.NodeID(n.ID)] = topo.Point{X: n.X, Y: n.Y}
		p.Groups[model.NodeID(n.ID)] = model.GroupID(n.Cluster)
	}
	for _, c := range s.Clusters {
		p.Names[model.GroupID(c.ID)] = c.Name
	}
	return p
}

// Network builds a simulated network from the scenario.
func (s *Scenario) Network() (*sim.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts := sim.DefaultOptions()
	opts.Radio.LossRate = s.Loss
	opts.Radio.Seed = s.Workload.Seed
	if s.Payload > 0 {
		opts.Radio.Payload = s.Payload
	}
	opts.BudgetJoules = s.Budget
	if len(s.Parents) > 0 {
		tree, links, err := s.pinnedTree()
		if err != nil {
			return nil, err
		}
		return sim.FromTree(s.Placement(), links, tree, opts), nil
	}
	return sim.New(s.Placement(), s.Radius, opts)
}

// Tree returns the scenario's routing tree: the pinned one when declared,
// otherwise the first-heard BFS tree over disk connectivity.
func (s *Scenario) Tree() (*topo.Tree, error) {
	if len(s.Parents) > 0 {
		tree, _, err := s.pinnedTree()
		return tree, err
	}
	p := s.Placement()
	return topo.BuildTree(p, topo.DiskLinks(p, s.Radius))
}

// pinnedTree materializes the explicit parent map.
func (s *Scenario) pinnedTree() (*topo.Tree, *topo.Links, error) {
	tree := &topo.Tree{
		Parent:   make(map[model.NodeID]model.NodeID),
		Children: make(map[model.NodeID][]model.NodeID),
		Depth:    make(map[model.NodeID]int),
		Root:     model.Sink,
	}
	links := topo.NewLinks()
	for key, parent := range s.Parents {
		var child uint16
		if _, err := fmt.Sscanf(key, "%d", &child); err != nil {
			return nil, nil, fmt.Errorf("config: parent key %q is not a node id", key)
		}
		tree.Parent[model.NodeID(child)] = model.NodeID(parent)
		tree.Children[model.NodeID(parent)] = append(tree.Children[model.NodeID(parent)], model.NodeID(child))
		links.Connect(model.NodeID(child), model.NodeID(parent))
	}
	for _, cs := range tree.Children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	// Fill depths by walking from the sink; unreachable nodes are an error.
	var fill func(n model.NodeID, d int)
	tree.Depth[model.Sink] = 0
	fill = func(n model.NodeID, d int) {
		tree.Depth[n] = d
		for _, c := range tree.Children[n] {
			fill(c, d+1)
		}
	}
	fill(model.Sink, 0)
	for _, n := range s.Nodes {
		if _, ok := tree.Depth[model.NodeID(n.ID)]; !ok {
			return nil, nil, fmt.Errorf("config: node %d not reachable through pinned parents", n.ID)
		}
	}
	if err := tree.Validate(); err != nil {
		return nil, nil, fmt.Errorf("config: pinned tree invalid: %w", err)
	}
	return tree, links, nil
}

// Source builds the scenario's trace source.
func (s *Scenario) Source() (trace.Source, error) {
	p := s.Placement()
	switch s.Workload.Kind {
	case "", "rooms":
		src := trace.NewRoomActivity(s.Workload.Seed, p.Groups, len(p.GroupIDs()))
		if s.Workload.Period > 0 {
			src.Period = model.Epoch(s.Workload.Period)
		}
		if s.Workload.ActiveFrac > 0 {
			src.ActiveFrac = s.Workload.ActiveFrac
		}
		return src, nil
	case "diurnal":
		return trace.NewDiurnal(s.Workload.Seed), nil
	case "walk":
		lo, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 100)
		return trace.NewRandomWalk(s.Workload.Seed, lo, hi), nil
	case "zipf":
		_, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 1000)
		return trace.NewZipf(s.Workload.Seed, p.Groups, 1.5, hi), nil
	case "uniform":
		lo, hi := defRange(s.Workload.Min, s.Workload.Max, 0, 100)
		return &trace.Uniform{Seed: s.Workload.Seed, Min: lo, Max: hi}, nil
	case "fixture":
		vals := make(map[model.NodeID][]model.Value, len(s.Workload.Fixture))
		for k, vs := range s.Workload.Fixture {
			var id uint16
			if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
				return nil, fmt.Errorf("config: fixture key %q is not a node id", k)
			}
			mv := make([]model.Value, len(vs))
			for i, v := range vs {
				mv[i] = model.Value(v)
			}
			vals[model.NodeID(id)] = mv
		}
		return trace.NewFixture(vals), nil
	default:
		return nil, fmt.Errorf("config: unknown workload kind %q", s.Workload.Kind)
	}
}

func defRange(lo, hi, dlo, dhi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return dlo, dhi
	}
	return lo, hi
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Decode(data)
}

// Decode parses and validates scenario JSON.
func Decode(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: bad scenario JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FromPlacement captures an in-memory placement as a scenario (the
// Configuration Panel's "create a new scenario that can be stored in a
// configuration file").
func FromPlacement(name string, p *topo.Placement, radius float64) *Scenario {
	s := &Scenario{Name: name, Radius: radius}
	if pt, ok := p.Positions[model.Sink]; ok {
		s.SinkX, s.SinkY = pt.X, pt.Y
	}
	for _, id := range p.SensorNodes() {
		pt := p.Positions[id]
		s.Nodes = append(s.Nodes, Node{ID: uint16(id), X: pt.X, Y: pt.Y, Cluster: uint16(p.Groups[id])})
	}
	var gids []model.GroupID
	for g := range p.Names {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		s.Clusters = append(s.Clusters, Cluster{ID: uint16(g), Name: p.Names[g]})
	}
	if len(s.Clusters) == 0 {
		for _, g := range p.GroupIDs() {
			s.Clusters = append(s.Clusters, Cluster{ID: uint16(g), Name: fmt.Sprintf("cluster %d", g)})
		}
	}
	return s
}

// Figure3Scenario returns the paper's demo scenario as a ready-made config.
func Figure3Scenario() *Scenario {
	s := FromPlacement("icde09-demo", trace.Figure3Placement(), 15)
	s.Workload = Workload{Kind: "rooms", Seed: 42, Period: 10, ActiveFrac: 0.5}
	return s
}

// scalePerRoom is the sensors-per-room density of the scale-* scenario
// family.
const scalePerRoom = 20

// ScaleScenario deterministically generates the scale-<n> deployment: n
// sensors in rooms of 20 on a square building grid, the production-scale
// workload family of the benchmark trajectory (scenarios/scale-1000.json,
// scale-4000.json are its committed outputs — regenerate with
// `kspot-sim -gen-scale <n> -emit <file>`). n must be a positive multiple
// of 20. The generator is a pure function of n: positions derive from a
// seeded layout and are rounded to centimeters so the JSON stays compact
// and byte-stable across regenerations.
func ScaleScenario(n int) (*Scenario, error) {
	if n < scalePerRoom || n%scalePerRoom != 0 {
		return nil, fmt.Errorf("config: scale scenario size %d must be a positive multiple of %d", n, scalePerRoom)
	}
	rooms := n / scalePerRoom
	p := topo.Rooms(rooms, scalePerRoom, 12, int64(1009+n))
	for id, pt := range p.Positions {
		p.Positions[id] = topo.Point{
			X: math.Round(pt.X*100) / 100,
			Y: math.Round(pt.Y*100) / 100,
		}
	}
	s := FromPlacement(fmt.Sprintf("scale-%d", n), p, 15)
	s.Workload = Workload{Kind: "rooms", Seed: int64(n), Period: 10, ActiveFrac: 0.3}
	// A scale scenario must actually deploy: reject a layout whose routing
	// tree does not connect rather than shipping a dead file.
	if _, err := s.Network(); err != nil {
		return nil, fmt.Errorf("config: scale scenario %d does not deploy: %w", n, err)
	}
	return s, nil
}

// Sharded reports whether the scenario declares a federated deployment.
func (s *Scenario) Sharded() bool { return len(s.Shards) > 1 }

// ShardName returns shard i's display name ("shard-<i>" when unnamed).
func (s *Scenario) ShardName(i int) string {
	if i < len(s.Shards) && s.Shards[i].Name != "" {
		return s.Shards[i].Name
	}
	return fmt.Sprintf("shard-%d", i)
}

// shardSeedStride decorrelates per-shard fault seeds derived from one
// deployment-wide seed (shard 0 keeps the base seed, so an unsharded
// deployment and shard 0 of a sharded one replay identical fault patterns).
const shardSeedStride = 0x9E3779B9

// ShardFaultSeed derives shard i's fault-environment seed: the shard's
// pinned fault_seed when declared, otherwise base + i*stride so the shards
// fade independently under one armed config.
func (s *Scenario) ShardFaultSeed(base int64, i int) int64 {
	if i < len(s.Shards) && s.Shards[i].FaultSeed != 0 {
		return s.Shards[i].FaultSeed
	}
	return base + int64(i)*shardSeedStride
}

// ShardFaults specializes a deployment-wide fault environment for shard i:
// the seed is derived per shard (ShardFaultSeed) and churn events are
// filtered to the shard's own nodes. Frame-fault probabilities apply to
// every shard unchanged — loss is physics, the same weather over every
// network.
func (s *Scenario) ShardFaults(base faults.Config, i int) faults.Config {
	out := base
	out.Seed = s.ShardFaultSeed(base.Seed, i)
	if len(base.Churn) > 0 && i < len(s.Shards) {
		members := make(map[model.NodeID]bool)
		in := make(map[uint16]bool, len(s.Shards[i].Clusters))
		for _, c := range s.Shards[i].Clusters {
			in[c] = true
		}
		for _, n := range s.Nodes {
			if in[n.Cluster] {
				members[model.NodeID(n.ID)] = true
			}
		}
		out.Churn = nil
		for _, ev := range base.Churn {
			if members[ev.Node] {
				out.Churn = append(out.Churn, ev)
			}
		}
	}
	return out
}

// ShardScenarios splits a sharded scenario into its per-shard
// sub-deployments — each shard becomes a complete Scenario with its own
// base station (placed at the centroid of the shard's nodes, rounded to
// centimeters), its subset of nodes and clusters, and the parent's radio
// parameters. Node and cluster ids are preserved globally unique, so one
// trace source built from the flat scenario samples identical readings on
// the flat and the sharded deployment — the root of the federation layer's
// identical-answer guarantee. The per-shard Faults environment is NOT
// baked in here; kspot.System derives it at arm time via ShardFaults.
//
// An unsharded scenario returns itself as the single deployment.
func (s *Scenario) ShardScenarios() ([]*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Shards) == 0 {
		return []*Scenario{s}, nil
	}
	out := make([]*Scenario, 0, len(s.Shards))
	for i, sh := range s.Shards {
		in := make(map[uint16]bool, len(sh.Clusters))
		for _, c := range sh.Clusters {
			in[c] = true
		}
		sub := &Scenario{
			Name:     fmt.Sprintf("%s/%s", s.Name, s.ShardName(i)),
			Radius:   s.Radius,
			Loss:     s.Loss,
			Payload:  s.Payload,
			Budget:   s.Budget,
			Workload: s.Workload,
		}
		var cx, cy float64
		for _, n := range s.Nodes {
			if !in[n.Cluster] {
				continue
			}
			sub.Nodes = append(sub.Nodes, n)
			cx += n.X
			cy += n.Y
		}
		for _, c := range s.Clusters {
			if in[c.ID] {
				sub.Clusters = append(sub.Clusters, c)
			}
		}
		// Validate guarantees at least one node per shard; the shard's
		// base station sits at its field's centroid (each shard is its own
		// radio network with its own gateway).
		n := float64(len(sub.Nodes))
		sub.SinkX = math.Round(cx/n*100) / 100
		sub.SinkY = math.Round(cy/n*100) / 100
		out = append(out, sub)
	}
	return out, nil
}

// AutoShard overwrites the scenario's shards block, partitioning the
// cluster list (in id order) into n contiguous blocks of near-equal size.
// Cluster ids are assigned in spatial order by every generator in this
// repo (rooms on a grid, contiguous regroupings), so contiguous id blocks
// stay radio-connected. n ≤ 1 clears the block (a flat deployment).
func (s *Scenario) AutoShard(n int) error {
	if n <= 1 {
		s.Shards = nil
		return nil
	}
	if n > len(s.Clusters) {
		return fmt.Errorf("config: cannot split %d clusters into %d shards", len(s.Clusters), n)
	}
	ids := make([]uint16, 0, len(s.Clusters))
	for _, c := range s.Clusters {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.Shards = make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ids)/n, (i+1)*len(ids)/n
		s.Shards = append(s.Shards, Shard{Clusters: append([]uint16(nil), ids[lo:hi]...)})
	}
	return s.Validate()
}

// ScaleScenarioShards generates the scale-<n> deployment pre-split into
// the given number of shards, verifying every shard actually deploys (its
// subfield is radio-connected around its own base station). Sharded scale
// scenarios are generated, never committed: `kspot-sim -gen-scale <n>
// -shards <k>` reproduces the file byte-for-byte when one is needed.
func ScaleScenarioShards(n, shards int) (*Scenario, error) {
	s, err := ScaleScenario(n)
	if err != nil {
		return nil, err
	}
	if err := s.AutoShard(shards); err != nil {
		return nil, err
	}
	subs, err := s.ShardScenarios()
	if err != nil {
		return nil, err
	}
	for i, sub := range subs {
		if _, err := sub.Network(); err != nil {
			return nil, fmt.Errorf("config: scale scenario %d shard %d does not deploy: %w", n, i, err)
		}
	}
	return s, nil
}

// Figure1Scenario returns the paper's worked example with its exact values
// and its exact routing tree (s9 under s4 — the edge that trips the naive
// strategy).
func Figure1Scenario() *Scenario {
	p := trace.Figure1Placement()
	s := FromPlacement("figure-1", p, 8)
	fix := make(map[string][]float64, 9)
	for id, v := range trace.Figure1Values() {
		fix[fmt.Sprintf("%d", id)] = []float64{float64(v)}
	}
	s.Workload = Workload{Kind: "fixture", Fixture: fix}
	s.Parents = make(map[string]uint16)
	tree := trace.Figure1Tree()
	for child, parent := range tree.Parent {
		s.Parents[fmt.Sprintf("%d", child)] = uint16(parent)
	}
	return s
}
